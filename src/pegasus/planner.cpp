#include "pegasus/planner.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"

namespace nvo::pegasus {

Planner::Planner(const grid::Grid& grid, const ReplicaLocationService& rls,
                 const TransformationCatalog& tc, PlannerConfig config,
                 std::uint64_t seed)
    : grid_(grid), rls_(rls), tc_(tc), config_(std::move(config)), rng_(seed) {}

Expected<vds::Dag> Planner::reduce(const vds::Dag& abstract) const {
  auto order = abstract.topological_order();
  if (!order.ok()) return order.error();

  // Final products: outputs consumed by no node in the abstract workflow —
  // these are what the request asked for.
  std::set<std::string> consumed;
  for (const std::string& id : abstract.node_ids()) {
    for (const std::string& lfn : abstract.node(id)->inputs) consumed.insert(lfn);
  }

  // Decide keep/prune in reverse topological order: a job is kept iff some
  // output of it is (a) not already replicated and (b) either a final
  // product or consumed by a kept job. "The reduction component assumes
  // that it is more costly to execute a component than to access the
  // results of the component if that data is available."
  std::set<std::string> kept;
  std::set<std::string> inputs_of_kept;
  const std::vector<std::string>& topo = order.value();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const vds::DagNode* n = abstract.node(*it);
    bool needed = false;
    for (const std::string& lfn : n->outputs) {
      if (rls_.exists(lfn)) continue;  // someone already materialized it
      const bool is_final = !consumed.count(lfn);
      if (is_final || inputs_of_kept.count(lfn)) {
        needed = true;
        break;
      }
    }
    if (needed) {
      kept.insert(*it);
      for (const std::string& lfn : n->inputs) inputs_of_kept.insert(lfn);
    }
  }

  vds::Dag reduced;
  for (const std::string& id : abstract.node_ids()) {
    if (kept.count(id)) {
      const Status s = reduced.add_node(*abstract.node(id));
      if (!s.ok()) return s.error();
    }
  }
  for (const std::string& id : abstract.node_ids()) {
    if (!kept.count(id)) continue;
    for (const std::string& child : abstract.children(id)) {
      if (kept.count(child)) {
        const Status s = reduced.add_edge(id, child);
        if (!s.ok()) return s.error();
      }
    }
  }
  return reduced;
}

Status Planner::check_feasibility(const vds::Dag& dag) const {
  // Files produced inside the (reduced) workflow.
  std::set<std::string> produced;
  for (const std::string& id : dag.node_ids()) {
    for (const std::string& lfn : dag.node(id)->outputs) produced.insert(lfn);
  }
  for (const std::string& id : dag.node_ids()) {
    for (const std::string& lfn : dag.node(id)->inputs) {
      if (produced.count(lfn)) continue;
      if (!rls_.exists(lfn)) {
        return Error(ErrorCode::kInfeasible,
                     "input '" + lfn + "' of job " + id +
                         " has no replica anywhere in the grid");
      }
    }
  }
  return Status::Ok();
}

Expected<std::string> Planner::select_site(const vds::DagNode& node,
                                           const std::map<std::string, int>& load) {
  // Candidate sites: where the executable is installed AND that the grid
  // knows about.
  std::vector<std::string> candidates;
  for (const std::string& site : tc_.sites_for(node.transformation)) {
    if (grid_.site(site)) candidates.push_back(site);
  }
  if (candidates.empty()) {
    return Error(ErrorCode::kInfeasible,
                 "transformation '" + node.transformation +
                     "' is not installed at any grid site");
  }
  // Shared metric helper: this plan's own assignments per slot.
  const auto static_metric = [&](const std::string& site) {
    const auto it = load.find(site);
    const int assigned = it == load.end() ? 0 : it->second;
    const grid::SiteConfig* cfg = grid_.site(site);
    return static_cast<double>(assigned) / std::max(cfg->slots, 1);
  };

  switch (config_.site_policy) {
    case SitePolicy::kRandom:
      return candidates[rng_.uniform_index(candidates.size())];
    case SitePolicy::kLeastLoaded: {
      std::string best = candidates.front();
      double best_metric = 1e300;
      for (const std::string& site : candidates) {
        const double metric = static_metric(site);
        if (metric < best_metric) {
          best_metric = metric;
          best = site;
        }
      }
      return best;
    }
    case SitePolicy::kMdsRank: {
      // Dynamic information: external pressure from the MDS record plus
      // this plan's own assignments. Sites without a fresh record (dead or
      // stale) are skipped unless no candidate has one.
      std::string best;
      double best_metric = 1e300;
      for (const std::string& site : candidates) {
        double metric = static_metric(site);
        if (mds_) {
          const auto info = mds_->query(site, mds_now_s_);
          if (!info) continue;  // stale/dead: avoid
          metric += info->pressure();
        }
        if (metric < best_metric) {
          best_metric = metric;
          best = site;
        }
      }
      if (!best.empty()) return best;
      // Every record stale: degrade to least-loaded rather than fail.
      std::string fallback = candidates.front();
      double fallback_metric = 1e300;
      for (const std::string& site : candidates) {
        const double metric = static_metric(site);
        if (metric < fallback_metric) {
          fallback_metric = metric;
          fallback = site;
        }
      }
      return fallback;
    }
    case SitePolicy::kDataLocality: {
      // Estimated stage-in seconds from each raw input's nearest replica,
      // plus a load penalty so a hot pool next to the data does not absorb
      // the whole campaign while the rest of the grid idles.
      std::string best = candidates.front();
      double best_metric = 1e300;
      for (const std::string& site : candidates) {
        double stage_s = 0.0;
        for (const std::string& lfn : node.inputs) {
          if (grid_.has_file(site, lfn)) continue;  // already local
          const std::size_t n_rep = rls_.lookup_into(lfn, replica_scratch_);
          if (n_rep == 0) continue;  // produced in-workflow: placement-neutral
          double cheapest = 1e300;
          for (std::size_t i = 0; i < n_rep; ++i) {
            cheapest = std::min(
                cheapest, grid_.transfer_seconds(replica_scratch_[i].site, site, lfn));
          }
          stage_s += cheapest;
        }
        double load_units = static_metric(site);
        if (mds_) {
          if (const auto info = mds_->query(site, mds_now_s_)) {
            load_units += info->pressure();
          }
        }
        const double metric = stage_s + config_.locality_load_weight * load_units;
        if (metric < best_metric) {
          best_metric = metric;
          best = site;
        }
      }
      return best;
    }
  }
  return candidates.front();
}

Expected<Replica> Planner::select_replica(const std::string& lfn,
                                          const std::string& exec_site) {
  // lookup_into reuses the planner's scratch vector: concretizing a
  // campaign-sized workflow resolves hundreds of LFNs, and the by-value
  // lookup() paid a vector + string allocations for each.
  const std::size_t n = rls_.lookup_into(lfn, replica_scratch_);
  if (n == 0) {
    return Error(ErrorCode::kNotFound, "no replica of '" + lfn + "'");
  }
  switch (config_.replica_policy) {
    case ReplicaPolicy::kRandom:
      return replica_scratch_[rng_.uniform_index(n)];
    case ReplicaPolicy::kFirst:
      return replica_scratch_.front();
    case ReplicaPolicy::kNearest: {
      std::size_t best = 0;
      double best_s = 1e300;
      for (std::size_t i = 0; i < n; ++i) {
        const double s = grid_.transfer_seconds(replica_scratch_[i].site, exec_site, lfn);
        if (s < best_s) {
          best_s = s;
          best = i;
        }
      }
      return replica_scratch_[best];
    }
  }
  return replica_scratch_.front();
}

Expected<PlanResult> Planner::plan(const vds::Dag& abstract) {
  const std::size_t abstract_jobs = abstract.num_nodes();

  // Final products of the abstract workflow already materialized are
  // reported as reused (the web service short-circuits on them).
  std::set<std::string> consumed;
  for (const std::string& id : abstract.node_ids()) {
    for (const std::string& lfn : abstract.node(id)->inputs) consumed.insert(lfn);
  }
  std::vector<std::string> reused;
  for (const std::string& id : abstract.node_ids()) {
    for (const std::string& lfn : abstract.node(id)->outputs) {
      if (!consumed.count(lfn) && rls_.exists(lfn)) reused.push_back(lfn);
    }
  }

  vds::Dag reduced;
  if (config_.reduce) {
    auto r = reduce(abstract);
    if (!r.ok()) return r.error();
    reduced = std::move(r.value());
  } else {
    reduced = abstract;
  }
  const std::size_t pruned = abstract_jobs - reduced.num_nodes();

  const Status feasible = check_feasibility(reduced);
  if (!feasible.ok()) return feasible.error();

  return concretize(std::move(reduced), abstract_jobs, pruned, std::move(reused));
}

Expected<PlanResult> Planner::concretize(vds::Dag reduced, std::size_t abstract_jobs,
                                         std::size_t pruned,
                                         std::vector<std::string> reused_outputs) {
  PlanResult result;
  result.abstract_jobs = abstract_jobs;
  result.pruned_jobs = pruned;
  result.reused_outputs = std::move(reused_outputs);

  // --- site selection ---
  std::map<std::string, int> load;
  for (const std::string& id : reduced.node_ids()) {
    vds::DagNode* n = reduced.mutable_node(id);
    auto site = select_site(*n, load);
    if (!site.ok()) return site.error();
    n->site = std::move(site.value());
    ++load[n->site];
    auto entry = tc_.lookup_at(n->transformation, n->site);
    if (entry.ok()) n->executable = entry->executable;
  }

  // Producer map within the reduced workflow.
  std::map<std::string, std::string> produced_by;
  for (const std::string& id : reduced.node_ids()) {
    for (const std::string& lfn : reduced.node(id)->outputs) produced_by[lfn] = id;
  }
  std::set<std::string> final_products;
  {
    std::set<std::string> consumed;
    for (const std::string& id : reduced.node_ids()) {
      for (const std::string& lfn : reduced.node(id)->inputs) consumed.insert(lfn);
    }
    for (const auto& [lfn, id] : produced_by) {
      if (!consumed.count(lfn)) final_products.insert(lfn);
    }
  }

  // The concrete DAG starts as a copy of the mapped compute nodes + edges.
  vds::Dag concrete = reduced;

  // --- stage-in transfers (deduplicated per (site, lfn)) ---
  std::map<std::pair<std::string, std::string>, std::string> staged;  // -> node id
  std::size_t transfer_counter = 0;
  for (const std::string& id : reduced.node_ids()) {
    const vds::DagNode* n = reduced.node(id);
    const std::string exec_site = n->site;
    for (const std::string& lfn : n->inputs) {
      const auto producer = produced_by.find(lfn);
      if (producer != produced_by.end()) {
        // Produced inside the workflow. If the producer runs elsewhere,
        // insert an inter-site transfer between them.
        const std::string producer_site = reduced.node(producer->second)->site;
        if (producer_site == exec_site) continue;
        const auto key = std::make_pair(exec_site, lfn);
        auto it = staged.find(key);
        if (it == staged.end()) {
          vds::DagNode tx;
          tx.id = format("tx_%zu", ++transfer_counter);
          tx.type = vds::JobType::kTransfer;
          tx.file = lfn;
          tx.source_site = producer_site;
          tx.site = exec_site;
          if (const Status s = concrete.add_node(tx); !s.ok()) return s.error();
          if (const Status s = concrete.add_edge(producer->second, tx.id); !s.ok()) {
            return s.error();
          }
          it = staged.emplace(key, tx.id).first;
        }
        if (const Status s = concrete.add_edge(it->second, id); !s.ok()) {
          return s.error();
        }
        continue;
      }
      // Raw input: a ready-on-data edge for dataflow executors, then stage
      // in from a selected replica, unless a copy is already at the
      // execution site.
      if (n->type == vds::JobType::kCompute) {
        result.data_inputs[id].push_back(lfn);
      }
      if (grid_.has_file(exec_site, lfn)) continue;
      const auto key = std::make_pair(exec_site, lfn);
      auto it = staged.find(key);
      if (it == staged.end()) {
        auto replica = select_replica(lfn, exec_site);
        if (!replica.ok()) return replica.error();
        if (replica->site == exec_site) continue;  // registered replica local
        vds::DagNode tx;
        tx.id = format("tx_%zu", ++transfer_counter);
        tx.type = vds::JobType::kTransfer;
        tx.file = lfn;
        tx.source_site = replica->site;
        tx.site = exec_site;
        if (const Status s = concrete.add_node(tx); !s.ok()) return s.error();
        it = staged.emplace(key, tx.id).first;
      }
      if (const Status s = concrete.add_edge(it->second, id); !s.ok()) {
        return s.error();
      }
    }
  }

  // --- stage-out + registration for final products (Fig. 4) ---
  std::size_t register_counter = 0;
  for (const std::string& lfn : final_products) {
    const std::string producer_id = produced_by.at(lfn);
    std::string tail = producer_id;
    if (config_.stage_out) {
      vds::DagNode tx;
      tx.id = format("tx_out_%zu", ++transfer_counter);
      tx.type = vds::JobType::kTransfer;
      tx.file = lfn;
      tx.source_site = reduced.node(producer_id)->site;
      tx.site = config_.output_site;
      if (const Status s = concrete.add_node(tx); !s.ok()) return s.error();
      if (const Status s = concrete.add_edge(tail, tx.id); !s.ok()) return s.error();
      tail = tx.id;
    }
    if (config_.register_outputs) {
      vds::DagNode reg;
      reg.id = format("reg_%zu", ++register_counter);
      reg.type = vds::JobType::kRegister;
      reg.file = lfn;
      reg.site = config_.stage_out ? config_.output_site
                                   : reduced.node(producer_id)->site;
      if (const Status s = concrete.add_node(reg); !s.ok()) return s.error();
      if (const Status s = concrete.add_edge(tail, reg.id); !s.ok()) return s.error();
    }
  }

  for (const std::string& id : concrete.node_ids()) {
    switch (concrete.node(id)->type) {
      case vds::JobType::kCompute:
        ++result.compute_nodes;
        break;
      case vds::JobType::kTransfer:
        ++result.transfer_nodes;
        break;
      case vds::JobType::kRegister:
        ++result.register_nodes;
        break;
    }
  }
  result.concrete = std::move(concrete);
  return result;
}

SubmitFiles generate_submit_files(const vds::Dag& concrete) {
  SubmitFiles out;
  std::string dag_text;
  for (const std::string& id : concrete.node_ids()) {
    const vds::DagNode* n = concrete.node(id);
    std::string sub;
    switch (n->type) {
      case vds::JobType::kCompute: {
        sub += "universe = globus\n";
        sub += format("globusscheduler = %s/jobmanager-condor\n", n->site.c_str());
        sub += format("executable = %s\n",
                      n->executable.empty() ? ("/grid/bin/" + n->transformation).c_str()
                                            : n->executable.c_str());
        std::string args;
        for (const auto& [key, value] : n->args) {
          args += format(" -%s %s", key.c_str(), value.c_str());
        }
        for (const std::string& lfn : n->inputs) args += " -i " + lfn;
        for (const std::string& lfn : n->outputs) args += " -o " + lfn;
        sub += "arguments =" + args + "\n";
        sub += "transfer_input_files = " + join(n->inputs, ",") + "\n";
        break;
      }
      case vds::JobType::kTransfer:
        sub += "universe = globus\n";
        sub += "executable = /grid/bin/globus-url-copy\n";
        sub += format("arguments = gsiftp://%s/%s gsiftp://%s/%s\n",
                      n->source_site.c_str(), n->file.c_str(), n->site.c_str(),
                      n->file.c_str());
        break;
      case vds::JobType::kRegister:
        sub += "universe = scheduler\n";
        sub += "executable = /grid/bin/rls-register\n";
        sub += format("arguments = %s gsiftp://%s/%s\n", n->file.c_str(),
                      n->site.c_str(), n->file.c_str());
        break;
    }
    sub += "log = " + id + ".log\n";
    sub += "queue\n";
    const std::string filename = id + ".sub";
    out.submit[filename] = std::move(sub);
    dag_text += "JOB " + id + " " + filename + "\n";
  }
  for (const std::string& id : concrete.node_ids()) {
    const auto& kids = concrete.children(id);
    if (!kids.empty()) {
      dag_text += "PARENT " + id + " CHILD " + join(kids, " ") + "\n";
    }
  }
  out.dag_file = std::move(dag_text);
  return out;
}

std::size_t commit_execution(const vds::Dag& concrete, const grid::RunReport& report,
                             ReplicaLocationService& rls, grid::Grid& grid) {
  std::size_t registrations = 0;
  for (const grid::NodeResult& r : report.nodes) {
    if (r.outcome != grid::NodeOutcome::kSucceeded) continue;
    const vds::DagNode* n = concrete.node(r.id);
    if (!n) continue;
    // Where the node actually ran: a stolen or rescue-remapped node's
    // products land at the site the executor reports, not the planned one.
    const std::string& exec_site = r.site.empty() ? n->site : r.site;
    switch (n->type) {
      case vds::JobType::kCompute:
        // Products appear in the execution site's storage.
        for (const std::string& lfn : n->outputs) {
          grid.put_file(exec_site, lfn,
                        grid.file_size(lfn).value_or(grid.default_file_bytes));
        }
        break;
      case vds::JobType::kTransfer:
        grid.put_file(n->site, n->file,
                      grid.file_size(n->file).value_or(grid.default_file_bytes));
        break;
      case vds::JobType::kRegister:
        // The new replica is the same bytes as the source the transfer read,
        // so the registration inherits the LFN's recorded content digest —
        // integrity metadata travels with the data as it propagates.
        rls.add(n->file, n->site, "gsiftp://" + n->site + "/" + n->file,
                rls.digest_for(n->file));
        ++registrations;
        break;
    }
  }
  return registrations;
}

Expected<RescueRemap> remap_rescue_sites(vds::Dag& rescue, const grid::Grid& grid,
                                         const std::set<std::string>& dead_sites,
                                         const TransformationCatalog& tc,
                                         const ReplicaLocationService& rls,
                                         const std::string& fallback_source_site) {
  RescueRemap remap;
  if (dead_sites.empty()) return remap;

  const auto alive = [&](const std::string& site) {
    return !site.empty() && dead_sites.count(site) == 0;
  };

  // Pass 1: move compute nodes off dead pools, spreading them over the
  // least-remapped surviving site that has the transformation installed.
  std::map<std::string, int> remap_load;
  std::map<std::string, std::string> producer_site;  // lfn -> (new) producer site
  std::map<std::string, std::string> producer_node;  // lfn -> in-rescue producer id
  std::vector<std::string> moved;                    // remapped compute node ids
  for (const std::string& id : rescue.node_ids()) {
    vds::DagNode* n = rescue.mutable_node(id);
    if (n->type != vds::JobType::kCompute) continue;
    if (!alive(n->site)) {
      std::string best;
      int best_load = 0;
      for (const std::string& site : tc.sites_for(n->transformation)) {
        if (!grid.site(site) || !alive(site)) continue;
        const int l = remap_load[site];
        if (best.empty() || l < best_load) {
          best = site;
          best_load = l;
        }
      }
      if (best.empty()) {
        return Error(ErrorCode::kInfeasible,
                     "rescue: transformation '" + n->transformation +
                         "' of " + id + " is not installed at any surviving site");
      }
      n->site = best;
      ++remap_load[best];
      if (const auto entry = tc.lookup_at(n->transformation, n->site); entry.ok()) {
        n->executable = entry->executable;
      }
      ++remap.compute_remapped;
      moved.push_back(id);
    }
    for (const std::string& lfn : n->outputs) {
      producer_site[lfn] = n->site;
      producer_node[lfn] = id;
    }
  }

  // Pass 2: re-point transfer endpoints. Destinations follow the (possibly
  // remapped) consumer; dead sources fall through the replica chain.
  for (const std::string& id : rescue.node_ids()) {
    vds::DagNode* n = rescue.mutable_node(id);
    if (n->type != vds::JobType::kTransfer) continue;
    bool changed = false;
    if (!alive(n->site)) {
      // A stage-in's destination is wherever its consumer now runs.
      for (const std::string& child : rescue.children(id)) {
        const vds::DagNode* c = rescue.node(child);
        if (c->type == vds::JobType::kCompute && alive(c->site)) {
          n->site = c->site;
          changed = true;
          break;
        }
      }
      if (!alive(n->site)) {
        return Error(ErrorCode::kInfeasible,
                     "rescue: transfer " + id + " destination '" + n->site +
                         "' is dead and no surviving consumer names a new one");
      }
    }
    if (!alive(n->source_site)) {
      std::string src;
      // (a) a surviving registered replica;
      for (const Replica& rep : rls.lookup(n->file)) {
        if (alive(rep.site) && grid.site(rep.site)) {
          src = rep.site;
          break;
        }
      }
      // (b) any surviving grid copy (e.g. committed by an earlier round);
      if (src.empty()) {
        for (const std::string& site : grid.locations(n->file)) {
          if (alive(site)) {
            src = site;
            break;
          }
        }
      }
      // (c) the in-rescue producer, which pass 1 moved to a live pool;
      if (src.empty()) {
        const auto it = producer_site.find(n->file);
        if (it != producer_site.end() && alive(it->second)) src = it->second;
      }
      // (d) the submit host re-stages from its own copy.
      if (src.empty()) src = fallback_source_site;
      n->source_site = src;
      changed = true;
    }
    if (changed) ++remap.transfers_retargeted;
  }

  // Pass 3: re-stage orphaned inputs. A stage-in that completed on a pool
  // before it died left its replica in the wreckage — the remapped consumer
  // needs the bytes moved again, to wherever it runs now. Synthesize one
  // transfer per missing (site, lfn), sourced through the same replica chain
  // as pass 2, and dedup across consumers sharing an input.
  std::set<std::pair<std::string, std::string>> provided;  // (dest site, lfn)
  for (const std::string& id : rescue.node_ids()) {
    const vds::DagNode* n = rescue.node(id);
    if (n->type == vds::JobType::kTransfer) provided.insert({n->site, n->file});
  }
  std::size_t restage_seq = 0;
  for (const std::string& id : moved) {
    const vds::DagNode* n = rescue.node(id);
    for (const std::string& lfn : n->inputs) {
      const std::string& dest = n->site;
      if (grid.has_file(dest, lfn)) continue;
      if (provided.count({dest, lfn})) continue;
      std::string src;
      for (const Replica& rep : rls.lookup(lfn)) {
        if (alive(rep.site) && grid.site(rep.site)) {
          src = rep.site;
          break;
        }
      }
      if (src.empty()) {
        for (const std::string& site : grid.locations(lfn)) {
          if (alive(site)) {
            src = site;
            break;
          }
        }
      }
      const auto prod = producer_node.find(lfn);
      if (src.empty() && prod != producer_node.end() &&
          alive(producer_site[lfn])) {
        src = producer_site[lfn];
      }
      if (src.empty()) src = fallback_source_site;
      if (src == dest) continue;  // already local once the producer commits
      vds::DagNode tx;
      tx.id = "restage_" + std::to_string(restage_seq++) + "_" + lfn;
      tx.type = vds::JobType::kTransfer;
      tx.file = lfn;
      tx.site = dest;
      tx.source_site = src;
      rescue.add_node(tx);
      if (prod != producer_node.end() && rescue.node(prod->second) != nullptr) {
        rescue.add_edge(prod->second, tx.id);
      }
      rescue.add_edge(tx.id, id);
      provided.insert({dest, lfn});
      ++remap.inputs_restaged;
    }
  }
  return remap;
}

}  // namespace nvo::pegasus
