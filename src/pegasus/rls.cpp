#include "pegasus/rls.hpp"

#include <algorithm>

namespace nvo::pegasus {

void ReplicaLocationService::add(const std::string& lfn, const std::string& site,
                                 const std::string& pfn, std::uint64_t digest) {
  std::lock_guard lock(mutex_);
  ++stats_.registrations;
  auto& list = replicas_[lfn];
  for (Replica& r : list) {
    if (r.site == site) {
      r.pfn = pfn;
      if (digest != 0) r.digest = digest;
      return;
    }
  }
  list.push_back(Replica{lfn, site, pfn, digest});
}

Status ReplicaLocationService::remove(const std::string& lfn, const std::string& site) {
  std::lock_guard lock(mutex_);
  const auto it = replicas_.find(lfn);
  if (it == replicas_.end()) return Error(ErrorCode::kNotFound, lfn);
  auto& list = it->second;
  const auto pos = std::find_if(list.begin(), list.end(),
                                [&](const Replica& r) { return r.site == site; });
  if (pos == list.end()) return Error(ErrorCode::kNotFound, lfn + " at " + site);
  list.erase(pos);
  if (list.empty()) replicas_.erase(it);
  return Status::Ok();
}

std::vector<Replica> ReplicaLocationService::lookup(const std::string& lfn) const {
  std::lock_guard lock(mutex_);
  ++stats_.queries;
  const auto it = replicas_.find(lfn);
  return it == replicas_.end() ? std::vector<Replica>{} : it->second;
}

std::size_t ReplicaLocationService::lookup_into(const std::string& lfn,
                                                std::vector<Replica>& out) const {
  std::lock_guard lock(mutex_);
  ++stats_.queries;
  const auto it = replicas_.find(lfn);
  const std::size_t n = it == replicas_.end() ? 0 : it->second.size();
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Field-wise copy-assign so surviving elements recycle their string
    // capacity across calls.
    const Replica& src = it->second[i];
    out[i].lfn = src.lfn;
    out[i].site = src.site;
    out[i].pfn = src.pfn;
    out[i].digest = src.digest;
  }
  return n;
}

std::uint64_t ReplicaLocationService::digest_for(const std::string& lfn) const {
  std::lock_guard lock(mutex_);
  const auto it = replicas_.find(lfn);
  if (it == replicas_.end()) return 0;
  for (const Replica& r : it->second) {
    if (r.digest != 0) return r.digest;
  }
  return 0;
}

Status ReplicaLocationService::verify_digest(const std::string& lfn,
                                             std::uint64_t digest) const {
  std::lock_guard lock(mutex_);
  ++stats_.digest_checks;
  const auto it = replicas_.find(lfn);
  if (it == replicas_.end()) return Status::Ok();
  for (const Replica& r : it->second) {
    if (r.digest != 0 && digest != 0 && r.digest != digest) {
      ++stats_.digest_mismatches;
      return Error(ErrorCode::kDataCorruption,
                   "digest mismatch for " + lfn + " at " + r.site);
    }
  }
  return Status::Ok();
}

bool ReplicaLocationService::exists(const std::string& lfn) const {
  std::lock_guard lock(mutex_);
  ++stats_.queries;
  return replicas_.count(lfn) != 0;
}

std::size_t ReplicaLocationService::num_logical_files() const {
  std::lock_guard lock(mutex_);
  return replicas_.size();
}

ReplicaLocationService::Stats ReplicaLocationService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace nvo::pegasus
