#include "image/wcs.hpp"

namespace nvo::image {

Wcs::Wcs(const sky::Equatorial& center, double crpix_x, double crpix_y,
         double pixel_scale_deg)
    : crval_(center.normalized()),
      crpix_x_(crpix_x),
      crpix_y_(crpix_y),
      scale_deg_(pixel_scale_deg) {}

Wcs Wcs::centered(const sky::Equatorial& center, int width, int height,
                  double pixel_scale_deg) {
  // FITS reference pixel of a centered image: (N+1)/2 in 1-based coords.
  return Wcs(center, (width + 1) / 2.0, (height + 1) / 2.0, pixel_scale_deg);
}

sky::Equatorial Wcs::pixel_to_sky(double x, double y) const {
  // Standard coordinates: xi to the east. CDELT1 is negative (RA grows
  // leftward on the image), so xi = -scale * dx.
  const double dx = (x + 1.0) - crpix_x_;  // convert 0-based to 1-based
  const double dy = (y + 1.0) - crpix_y_;
  sky::TangentPlane tp;
  tp.xi_deg = -scale_deg_ * dx;
  tp.eta_deg = scale_deg_ * dy;
  return sky::deproject_tan(crval_, tp);
}

Wcs::PixelXY Wcs::sky_to_pixel(const sky::Equatorial& p) const {
  const sky::TangentPlane tp = sky::project_tan(crval_, p);
  PixelXY out;
  out.x = crpix_x_ - tp.xi_deg / scale_deg_ - 1.0;
  out.y = crpix_y_ + tp.eta_deg / scale_deg_ - 1.0;
  return out;
}

void Wcs::to_header(FitsHeader& header) const {
  header.set_string("CTYPE1", "RA---TAN", "gnomonic projection");
  header.set_string("CTYPE2", "DEC--TAN", "gnomonic projection");
  header.set_real("CRVAL1", crval_.ra_deg, "reference RA (deg)");
  header.set_real("CRVAL2", crval_.dec_deg, "reference Dec (deg)");
  header.set_real("CRPIX1", crpix_x_, "reference pixel, axis 1");
  header.set_real("CRPIX2", crpix_y_, "reference pixel, axis 2");
  header.set_real("CDELT1", -scale_deg_, "deg/pixel (RA grows left)");
  header.set_real("CDELT2", scale_deg_, "deg/pixel");
}

std::optional<Wcs> Wcs::from_header(const FitsHeader& header) {
  const auto crval1 = header.get_real("CRVAL1");
  const auto crval2 = header.get_real("CRVAL2");
  const auto crpix1 = header.get_real("CRPIX1");
  const auto crpix2 = header.get_real("CRPIX2");
  const auto cdelt2 = header.get_real("CDELT2");
  if (!crval1 || !crval2 || !crpix1 || !crpix2 || !cdelt2) return std::nullopt;
  sky::Equatorial center;
  center.ra_deg = *crval1;
  center.dec_deg = *crval2;
  return Wcs(center, *crpix1, *crpix2, *cdelt2);
}

}  // namespace nvo::image
