// Minimal FITS (Flexible Image Transport System) reader/writer, per the
// formats the paper relies on ("we use this standard in all our NVO
// demonstrations to transport images", citing Hanisch 2001b). Supports the
// single-HDU images the prototype moved around: 2880-byte logical records,
// 80-character header cards, BITPIX 8 / 16 / 32 / -32, big-endian data with
// BSCALE/BZERO. This is the wire format of every simulated archive: images
// travel through the HttpFabric and GridFTP model as serialized FITS bytes,
// so size accounting (the paper's "30MB of data") is faithful.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "image/image.hpp"

namespace nvo::image {

/// One header keyword record. FITS values are typed; we preserve enough of
/// the type system (logical / integer / real / string) to round-trip WCS.
struct FitsCard {
  std::string keyword;        ///< up to 8 chars, upper case
  std::string value;          ///< formatted value field (already FITS-formatted)
  std::string comment;        ///< optional comment
  bool is_string = false;     ///< value should be quoted on output
};

/// An in-memory FITS header: ordered cards plus index for lookup.
class FitsHeader {
 public:
  void set_logical(const std::string& keyword, bool value, const std::string& comment = "");
  void set_int(const std::string& keyword, long long value, const std::string& comment = "");
  void set_real(const std::string& keyword, double value, const std::string& comment = "");
  void set_string(const std::string& keyword, const std::string& value,
                  const std::string& comment = "");

  std::optional<bool> get_logical(const std::string& keyword) const;
  std::optional<long long> get_int(const std::string& keyword) const;
  std::optional<double> get_real(const std::string& keyword) const;
  std::optional<std::string> get_string(const std::string& keyword) const;
  bool has(const std::string& keyword) const;

  const std::vector<FitsCard>& cards() const { return cards_; }

 private:
  const FitsCard* find(const std::string& keyword) const;
  void upsert(FitsCard card);

  std::vector<FitsCard> cards_;
};

/// A FITS file in memory: header + image. The mandatory structural keywords
/// (SIMPLE/BITPIX/NAXIS*) are generated at serialization time from the image
/// and the requested bitpix; everything else comes from `header`.
struct FitsFile {
  FitsHeader header;
  Image data;
  int bitpix = -32;  ///< 8, 16, 32, or -32 (IEEE float)
};

/// Serializes to FITS bytes (header block(s) + big-endian data + padding).
std::vector<std::uint8_t> write_fits(const FitsFile& file);

/// Parses FITS bytes produced by write_fits (or any conforming single-HDU
/// 2-D image). Integer data are scaled by BSCALE/BZERO into the float image.
Expected<FitsFile> read_fits(const std::vector<std::uint8_t>& bytes);

/// File-system convenience wrappers.
Status write_fits_file(const std::string& path, const FitsFile& file);
Expected<FitsFile> read_fits_file(const std::string& path);

/// Size in bytes write_fits would produce, without serializing; used by the
/// transfer model for accounting.
std::size_t fits_serialized_size(const FitsFile& file);

}  // namespace nvo::image
