#include "image/fits.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/strings.hpp"

namespace nvo::image {

namespace {

constexpr std::size_t kRecord = 2880;
constexpr std::size_t kCard = 80;

std::string format_card(const FitsCard& card) {
  // KEYWORD = value / comment, padded to 80 columns.
  std::string out = card.keyword;
  out.resize(8, ' ');
  if (card.keyword == "COMMENT" || card.keyword == "HISTORY" || card.keyword == "END") {
    out += card.value;
  } else {
    out += "= ";
    std::string value;
    if (card.is_string) {
      // Fixed format: quoted string starting at column 11, closing quote
      // no earlier than column 20.
      std::string quoted = "'" + replace_all(card.value, "'", "''");
      while (quoted.size() < 9) quoted += ' ';
      quoted += "'";
      value = quoted;
    } else {
      // Right-justify in columns 11-30 per fixed format.
      value = card.value;
      if (value.size() < 20) value.insert(0, 20 - value.size(), ' ');
    }
    out += value;
    if (!card.comment.empty()) {
      out += " / ";
      out += card.comment;
    }
  }
  if (out.size() > kCard) out.resize(kCard);
  out.resize(kCard, ' ');
  return out;
}

void pad_to_record(std::vector<std::uint8_t>& bytes, std::uint8_t fill) {
  const std::size_t rem = bytes.size() % kRecord;
  if (rem != 0) bytes.insert(bytes.end(), kRecord - rem, fill);
}

void append_card(std::vector<std::uint8_t>& bytes, const FitsCard& card) {
  const std::string s = format_card(card);
  bytes.insert(bytes.end(), s.begin(), s.end());
}

void push_be(std::vector<std::uint8_t>& bytes, std::uint32_t v, int n) {
  for (int i = n - 1; i >= 0; --i) {
    bytes.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t read_be(const std::uint8_t* p, int n) {
  std::uint32_t v = 0;
  for (int i = 0; i < n; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void FitsHeader::upsert(FitsCard card) {
  for (auto& existing : cards_) {
    if (existing.keyword == card.keyword) {
      existing = std::move(card);
      return;
    }
  }
  cards_.push_back(std::move(card));
}

const FitsCard* FitsHeader::find(const std::string& keyword) const {
  for (const auto& card : cards_) {
    if (card.keyword == keyword) return &card;
  }
  return nullptr;
}

void FitsHeader::set_logical(const std::string& keyword, bool value,
                             const std::string& comment) {
  upsert(FitsCard{keyword, value ? "T" : "F", comment, false});
}

void FitsHeader::set_int(const std::string& keyword, long long value,
                         const std::string& comment) {
  upsert(FitsCard{keyword, format("%lld", value), comment, false});
}

void FitsHeader::set_real(const std::string& keyword, double value,
                          const std::string& comment) {
  upsert(FitsCard{keyword, format("%.14G", value), comment, false});
}

void FitsHeader::set_string(const std::string& keyword, const std::string& value,
                            const std::string& comment) {
  upsert(FitsCard{keyword, value, comment, true});
}

std::optional<bool> FitsHeader::get_logical(const std::string& keyword) const {
  const FitsCard* card = find(keyword);
  if (!card || card->is_string) return std::nullopt;
  const std::string_view v = trim(card->value);
  if (v == "T") return true;
  if (v == "F") return false;
  return std::nullopt;
}

std::optional<long long> FitsHeader::get_int(const std::string& keyword) const {
  const FitsCard* card = find(keyword);
  if (!card || card->is_string) return std::nullopt;
  return parse_int(card->value);
}

std::optional<double> FitsHeader::get_real(const std::string& keyword) const {
  const FitsCard* card = find(keyword);
  if (!card || card->is_string) return std::nullopt;
  return parse_double(card->value);
}

std::optional<std::string> FitsHeader::get_string(const std::string& keyword) const {
  const FitsCard* card = find(keyword);
  if (!card) return std::nullopt;
  if (card->is_string) return card->value;
  return std::string(trim(card->value));
}

bool FitsHeader::has(const std::string& keyword) const { return find(keyword) != nullptr; }

std::vector<std::uint8_t> write_fits(const FitsFile& file) {
  std::vector<std::uint8_t> bytes;

  // --- header ---
  append_card(bytes, {"SIMPLE", "T", "conforms to FITS standard", false});
  append_card(bytes, {"BITPIX", format("%d", file.bitpix), "bits per data value", false});
  append_card(bytes, {"NAXIS", "2", "number of axes", false});
  append_card(bytes, {"NAXIS1", format("%d", file.data.width()), "", false});
  append_card(bytes, {"NAXIS2", format("%d", file.data.height()), "", false});
  for (const auto& card : file.header.cards()) {
    if (card.keyword == "SIMPLE" || card.keyword == "BITPIX" ||
        starts_with(card.keyword, "NAXIS") || card.keyword == "END") {
      continue;  // structural cards are ours
    }
    append_card(bytes, card);
  }
  append_card(bytes, {"END", "", "", false});
  // Header padding is ASCII spaces.
  pad_to_record(bytes, ' ');

  // --- data unit, big endian ---
  const Image& img = file.data;
  const std::size_t n = img.size();
  switch (file.bitpix) {
    case -32: {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t u;
        const float v = img.pixels()[i];
        std::memcpy(&u, &v, 4);
        push_be(bytes, u, 4);
      }
      break;
    }
    case 32: {
      for (std::size_t i = 0; i < n; ++i) {
        const long long v = std::llround(static_cast<double>(img.pixels()[i]));
        push_be(bytes, static_cast<std::uint32_t>(static_cast<std::int32_t>(
                            std::clamp<long long>(v, INT32_MIN, INT32_MAX))),
                4);
      }
      break;
    }
    case 16: {
      for (std::size_t i = 0; i < n; ++i) {
        const long long v = std::llround(static_cast<double>(img.pixels()[i]));
        push_be(bytes,
                static_cast<std::uint16_t>(static_cast<std::int16_t>(
                    std::clamp<long long>(v, INT16_MIN, INT16_MAX))),
                2);
      }
      break;
    }
    case 8: {
      for (std::size_t i = 0; i < n; ++i) {
        const long long v = std::llround(static_cast<double>(img.pixels()[i]));
        bytes.push_back(static_cast<std::uint8_t>(std::clamp<long long>(v, 0, 255)));
      }
      break;
    }
    default:
      // Unsupported bitpix at write time is a programming error; emit float.
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t u;
        const float v = img.pixels()[i];
        std::memcpy(&u, &v, 4);
        push_be(bytes, u, 4);
      }
      break;
  }
  // Data padding is zero bytes.
  pad_to_record(bytes, 0);
  return bytes;
}

Expected<FitsFile> read_fits(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kRecord || bytes.size() % kCard != 0) {
    return Error(ErrorCode::kParseError, "FITS stream shorter than one record");
  }
  FitsFile out;
  std::size_t pos = 0;
  bool saw_end = false;
  // --- parse header cards ---
  while (pos + kCard <= bytes.size()) {
    std::string card(reinterpret_cast<const char*>(&bytes[pos]), kCard);
    pos += kCard;
    const std::string keyword{trim(card.substr(0, 8))};
    if (keyword == "END") {
      saw_end = true;
      break;
    }
    if (keyword.empty() || keyword == "COMMENT" || keyword == "HISTORY") continue;
    if (card.size() < 10 || card[8] != '=') continue;
    std::string value_field = card.substr(10);
    FitsCard parsed;
    parsed.keyword = keyword;
    const std::string_view vtrim = trim(value_field);
    if (!vtrim.empty() && vtrim.front() == '\'') {
      // String value: scan for the closing quote, honoring '' escapes.
      std::string s;
      bool closed = false;
      for (std::size_t i = 1; i < vtrim.size(); ++i) {
        if (vtrim[i] == '\'') {
          if (i + 1 < vtrim.size() && vtrim[i + 1] == '\'') {
            s += '\'';
            ++i;
          } else {
            closed = true;
            break;
          }
        } else {
          s += vtrim[i];
        }
      }
      if (!closed) {
        return Error(ErrorCode::kParseError, "unterminated string in card " + keyword);
      }
      // FITS strings have significant leading, insignificant trailing blanks.
      while (!s.empty() && s.back() == ' ') s.pop_back();
      parsed.value = s;
      parsed.is_string = true;
    } else {
      // Value ends at the comment slash (if any).
      const std::size_t slash = value_field.find('/');
      parsed.value = std::string(trim(value_field.substr(0, slash)));
      if (slash != std::string::npos) {
        parsed.comment = std::string(trim(value_field.substr(slash + 1)));
      }
    }
    if (parsed.is_string) {
      out.header.set_string(parsed.keyword, parsed.value, parsed.comment);
    } else {
      // Re-enter the card through the typed setters, dispatching on content.
      if (auto iv = parse_int(parsed.value)) {
        out.header.set_int(parsed.keyword, *iv, parsed.comment);
      } else if (auto dv = parse_double(parsed.value)) {
        out.header.set_real(parsed.keyword, *dv, parsed.comment);
      } else if (parsed.value == "T" || parsed.value == "F") {
        out.header.set_logical(parsed.keyword, parsed.value == "T", parsed.comment);
      } else {
        out.header.set_string(parsed.keyword, parsed.value, parsed.comment);
      }
    }
  }
  if (!saw_end) return Error(ErrorCode::kParseError, "no END card in FITS header");

  // --- structural keywords ---
  const auto simple = out.header.get_logical("SIMPLE");
  if (!simple || !*simple) return Error(ErrorCode::kParseError, "SIMPLE != T");
  const auto bitpix = out.header.get_int("BITPIX");
  const auto naxis = out.header.get_int("NAXIS");
  if (!bitpix || !naxis) return Error(ErrorCode::kParseError, "missing BITPIX/NAXIS");
  if (*naxis != 2) {
    return Error(ErrorCode::kParseError, format("NAXIS=%lld unsupported (need 2)",
                                                static_cast<long long>(*naxis)));
  }
  const auto naxis1 = out.header.get_int("NAXIS1");
  const auto naxis2 = out.header.get_int("NAXIS2");
  if (!naxis1 || !naxis2 || *naxis1 <= 0 || *naxis2 <= 0) {
    return Error(ErrorCode::kParseError, "bad NAXIS1/NAXIS2");
  }
  out.bitpix = static_cast<int>(*bitpix);
  const double bscale = out.header.get_real("BSCALE").value_or(1.0);
  const double bzero = out.header.get_real("BZERO").value_or(0.0);

  // Data unit starts at the next record boundary after END.
  pos = (pos + kRecord - 1) / kRecord * kRecord;

  const int w = static_cast<int>(*naxis1);
  const int h = static_cast<int>(*naxis2);
  const std::size_t n = static_cast<std::size_t>(w) * h;
  const int bytes_per = std::abs(out.bitpix) / 8;
  if (pos + n * bytes_per > bytes.size()) {
    return Error(ErrorCode::kParseError, "FITS data unit truncated");
  }
  out.data = Image(w, h);
  const std::uint8_t* p = &bytes[pos];
  for (std::size_t i = 0; i < n; ++i, p += bytes_per) {
    double v = 0.0;
    switch (out.bitpix) {
      case -32: {
        const std::uint32_t u = read_be(p, 4);
        float f;
        std::memcpy(&f, &u, 4);
        v = f;
        break;
      }
      case 32:
        v = static_cast<std::int32_t>(read_be(p, 4));
        break;
      case 16:
        v = static_cast<std::int16_t>(static_cast<std::uint16_t>(read_be(p, 2)));
        break;
      case 8:
        v = p[0];
        break;
      default:
        return Error(ErrorCode::kParseError, format("unsupported BITPIX %d", out.bitpix));
    }
    out.data.pixels()[i] = static_cast<float>(bscale * v + bzero);
  }
  return out;
}

Status write_fits_file(const std::string& path, const FitsFile& file) {
  const std::vector<std::uint8_t> bytes = write_fits(file);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(ErrorCode::kIoError, "cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Error(ErrorCode::kIoError, "short write to " + path);
  return Status::Ok();
}

Expected<FitsFile> read_fits_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return read_fits(bytes);
}

std::size_t fits_serialized_size(const FitsFile& file) {
  // Header: 5 structural cards + user cards + END, rounded to records.
  std::size_t user_cards = 0;
  for (const auto& card : file.header.cards()) {
    if (card.keyword == "SIMPLE" || card.keyword == "BITPIX" ||
        starts_with(card.keyword, "NAXIS") || card.keyword == "END") {
      continue;
    }
    ++user_cards;
  }
  const std::size_t header_cards = 5 + user_cards + 1;
  const std::size_t header_bytes = (header_cards * kCard + kRecord - 1) / kRecord * kRecord;
  const std::size_t data_raw = file.data.size() * (std::abs(file.bitpix) / 8);
  const std::size_t data_bytes = (data_raw + kRecord - 1) / kRecord * kRecord;
  return header_bytes + data_bytes;
}

}  // namespace nvo::image
