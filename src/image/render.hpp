// Visualization: the stand-in for the Aladin viewer of the paper's Figure 7.
// Renders optical + X-ray composites as PPM with catalog-position dots
// colored by a scalar (the asymmetry index in the paper: blue = asymmetric
// spirals scattered across the field, orange = symmetric ellipticals
// concentrated at the center).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "image/image.hpp"

namespace nvo::image {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// 8-bit RGB raster with PPM (P6) serialization.
class RgbImage {
 public:
  RgbImage() = default;
  RgbImage(int width, int height, Rgb fill = {});

  int width() const { return width_; }
  int height() const { return height_; }
  Rgb& at(int x, int y) { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  Rgb at(int x, int y) const { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Draws a filled disc (the catalog dots of Fig. 7).
  void draw_dot(int cx, int cy, int radius, Rgb color);

  /// Serializes as binary PPM (P6). Row 0 of the Image is the *bottom* of
  /// the sky frame, so rows are flipped to put north up in the output.
  std::vector<std::uint8_t> to_ppm() const;
  Status write_ppm(const std::string& path) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> data_;
};

/// asinh intensity stretch mapping flux to [0,1]; the standard display
/// stretch for survey imagery (linear near zero, log-like at the bright end).
double asinh_stretch(double value, double soft, double max_value);

/// Grayscale rendering of a flux image with asinh stretch.
RgbImage render_grayscale(const Image& img);

/// Two-channel composite: `red_channel` (optical in Fig. 7) rendered in red/
/// yellow tones, `blue_channel` (X-ray) in blue, per the figure caption.
RgbImage render_composite(const Image& red_channel, const Image& blue_channel);

/// Maps a scalar in [lo, hi] onto the blue->orange diverging ramp used for
/// the asymmetry dots.
Rgb asymmetry_colormap(double value, double lo, double hi);

}  // namespace nvo::image
