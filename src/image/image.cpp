#include "image/image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace nvo::image {

Image::Image(int width, int height, float fill)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(std::max(width, 0)) * std::max(height, 0), fill) {
  assert(width >= 0 && height >= 0);
}

float Image::at_or(int x, int y, float fill) const {
  return in_bounds(x, y) ? at(x, y) : fill;
}

float Image::sample_bilinear(double x, double y, float fill) const {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const double fx = x - x0;
  const double fy = y - y0;
  const double v00 = at_or(x0, y0, fill);
  const double v10 = at_or(x0 + 1, y0, fill);
  const double v01 = at_or(x0, y0 + 1, fill);
  const double v11 = at_or(x0 + 1, y0 + 1, fill);
  const double top = v01 * (1.0 - fx) + v11 * fx;
  const double bot = v00 * (1.0 - fx) + v10 * fx;
  return static_cast<float>(bot * (1.0 - fy) + top * fy);
}

void Image::reshape(int width, int height, float fill) {
  assert(width >= 0 && height >= 0);
  width_ = width;
  height_ = height;
  data_.assign(static_cast<std::size_t>(std::max(width, 0)) * std::max(height, 0),
               fill);
}

void Image::assign_from(const Image& src) {
  width_ = src.width_;
  height_ = src.height_;
  data_.assign(src.data_.begin(), src.data_.end());
}

double Image::total_flux() const {
  double sum = 0.0;
  for (float v : data_) sum += v;
  return sum;
}

float Image::min_value() const {
  if (data_.empty()) return 0.0f;
  return *std::min_element(data_.begin(), data_.end());
}

float Image::max_value() const {
  if (data_.empty()) return 0.0f;
  return *std::max_element(data_.begin(), data_.end());
}

double Image::mean_value() const {
  if (data_.empty()) return 0.0;
  return total_flux() / static_cast<double>(data_.size());
}

void Image::add(const Image& other) {
  assert(other.width_ == width_ && other.height_ == height_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Image::scale(float factor) {
  for (float& v : data_) v *= factor;
}

Image Image::cutout(int x0, int y0, int w, int h, float fill) const {
  Image out(w, h, fill);
  const int src_x_begin = std::max(x0, 0);
  const int src_x_end = std::min(x0 + w, width_);
  const int src_y_begin = std::max(y0, 0);
  const int src_y_end = std::min(y0 + h, height_);
  for (int sy = src_y_begin; sy < src_y_end; ++sy) {
    for (int sx = src_x_begin; sx < src_x_end; ++sx) {
      out.at(sx - x0, sy - y0) = at(sx, sy);
    }
  }
  return out;
}

Image Image::rotate180_about(double cx, double cy, float fill) const {
  Image out(width_, height_, fill);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      // Destination pixel (x, y) reads from the point mirrored through
      // (cx, cy): p' = 2c - p.
      const double sx = 2.0 * cx - x;
      const double sy = 2.0 * cy - y;
      out.at(x, y) = sample_bilinear(sx, sy, fill);
    }
  }
  return out;
}

}  // namespace nvo::image
