#include "image/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/strings.hpp"

namespace nvo::image {

RgbImage::RgbImage(int width, int height, Rgb fill)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(std::max(width, 0)) * std::max(height, 0), fill) {}

void RgbImage::draw_dot(int cx, int cy, int radius, Rgb color) {
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy > radius * radius) continue;
      const int x = cx + dx;
      const int y = cy + dy;
      if (in_bounds(x, y)) at(x, y) = color;
    }
  }
}

std::vector<std::uint8_t> RgbImage::to_ppm() const {
  const std::string header = format("P6\n%d %d\n255\n", width_, height_);
  std::vector<std::uint8_t> out(header.begin(), header.end());
  out.reserve(out.size() + data_.size() * 3);
  for (int y = height_ - 1; y >= 0; --y) {  // flip: north (max y) on top
    for (int x = 0; x < width_; ++x) {
      const Rgb c = at(x, y);
      out.push_back(c.r);
      out.push_back(c.g);
      out.push_back(c.b);
    }
  }
  return out;
}

Status RgbImage::write_ppm(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = to_ppm();
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(ErrorCode::kIoError, "cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Error(ErrorCode::kIoError, "short write to " + path);
  return Status::Ok();
}

double asinh_stretch(double value, double soft, double max_value) {
  if (max_value <= 0.0) return 0.0;
  const double denom = std::asinh(max_value / soft);
  if (denom <= 0.0) return 0.0;
  const double v = std::asinh(std::max(value, 0.0) / soft) / denom;
  return std::clamp(v, 0.0, 1.0);
}

namespace {
// A robust display maximum: the 99.5th percentile, so a single bright core
// does not crush the rest of the frame to black.
double display_max(const Image& img) {
  std::vector<float> sorted = img.pixels();
  if (sorted.empty()) return 1.0;
  const std::size_t k =
      std::min(sorted.size() - 1, static_cast<std::size_t>(sorted.size() * 0.995));
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(k),
                   sorted.end());
  const double v = sorted[k];
  return v > 0.0 ? v : 1.0;
}
}  // namespace

RgbImage render_grayscale(const Image& img) {
  RgbImage out(img.width(), img.height());
  const double vmax = display_max(img);
  const double soft = vmax / 50.0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double v = asinh_stretch(img.at(x, y), soft, vmax);
      const auto g = static_cast<std::uint8_t>(255.0 * v);
      out.at(x, y) = {g, g, g};
    }
  }
  return out;
}

RgbImage render_composite(const Image& red_channel, const Image& blue_channel) {
  const int w = std::max(red_channel.width(), blue_channel.width());
  const int h = std::max(red_channel.height(), blue_channel.height());
  RgbImage out(w, h);
  const double rmax = display_max(red_channel);
  const double bmax = display_max(blue_channel);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double rv =
          asinh_stretch(red_channel.at_or(x, y), rmax / 50.0, rmax);
      const double bv =
          asinh_stretch(blue_channel.at_or(x, y), bmax / 50.0, bmax);
      Rgb c;
      c.r = static_cast<std::uint8_t>(255.0 * rv);
      c.g = static_cast<std::uint8_t>(255.0 * (0.5 * rv + 0.25 * bv));
      c.b = static_cast<std::uint8_t>(255.0 * bv);
      out.at(x, y) = c;
    }
  }
  return out;
}

Rgb asymmetry_colormap(double value, double lo, double hi) {
  double t = hi > lo ? (value - lo) / (hi - lo) : 0.5;
  t = std::clamp(t, 0.0, 1.0);
  // t = 0 -> orange (symmetric ellipticals), t = 1 -> blue (asymmetric
  // spirals), matching the Fig. 7 caption.
  Rgb orange{255, 150, 30};
  Rgb blue{60, 110, 255};
  Rgb out;
  out.r = static_cast<std::uint8_t>(orange.r + t * (blue.r - orange.r));
  out.g = static_cast<std::uint8_t>(orange.g + t * (blue.g - orange.g));
  out.b = static_cast<std::uint8_t>(orange.b + t * (blue.b - orange.b));
  return out;
}

}  // namespace nvo::image
