// Core raster type used throughout the pipeline: a row-major float32 image,
// the in-memory equivalent of a FITS primary HDU data array. Pixel (0,0) is
// the bottom-left corner, matching FITS convention (NAXIS1 = x = column,
// NAXIS2 = y = row, first pixel at the start of the data unit).
#pragma once

#include <cstddef>
#include <vector>

namespace nvo::image {

class Image {
 public:
  Image() = default;
  Image(int width, int height, float fill = 0.0f);

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Unchecked pixel access. x is the column in [0,width), y the row.
  float& at(int x, int y) { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  float at(int x, int y) const { return data_[static_cast<std::size_t>(y) * width_ + x]; }

  /// Bounds-checked read; out-of-frame pixels read as `fill`.
  float at_or(int x, int y, float fill = 0.0f) const;

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& pixels() { return data_; }
  const std::vector<float>& pixels() const { return data_; }

  /// Bilinear sample at fractional pixel coordinates; out-of-frame -> fill.
  float sample_bilinear(double x, double y, float fill = 0.0f) const;

  /// Bilinear sample of this image rotated 180 degrees about (cx, cy),
  /// evaluated at destination pixel (x, y) — the per-pixel form of
  /// rotate180_about that lets the asymmetry statistic touch only aperture
  /// pixels without materializing the rotated frame.
  float sample_rotated180(double cx, double cy, int x, int y,
                          float fill = 0.0f) const {
    return sample_bilinear(2.0 * cx - x, 2.0 * cy - y, fill);
  }

  /// Resizes to width x height, discarding contents (every pixel reset to
  /// `fill`). Reuses the existing allocation when capacity suffices, so a
  /// long-lived scratch Image cycles through a batch without reallocating.
  void reshape(int width, int height, float fill = 0.0f);

  /// Copies `src` into this image (dimensions + pixels), reusing capacity.
  void assign_from(const Image& src);

  /// Sum of all pixels.
  double total_flux() const;

  /// Min / max / mean over all pixels; zeros when empty.
  float min_value() const;
  float max_value() const;
  double mean_value() const;

  /// Adds `other` pixel-wise; dimensions must match.
  void add(const Image& other);

  /// Multiplies every pixel by a scalar.
  void scale(float factor);

  /// Extracts the [x0, x0+w) x [y0, y0+h) sub-image. Regions extending past
  /// the frame are filled with `fill` — cutouts near a mosaic edge behave
  /// the way the paper's cutout services did (padded, not truncated).
  Image cutout(int x0, int y0, int w, int h, float fill = 0.0f) const;

  /// Image rotated by 180 degrees about the point (cx, cy) in pixel
  /// coordinates (bilinear resampled). This is the R operator of the
  /// Conselice asymmetry index: A ~ sum|I - R(I)| / sum|I|.
  Image rotate180_about(double cx, double cy, float fill = 0.0f) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

}  // namespace nvo::image
