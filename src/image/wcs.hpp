// World Coordinate System: the mapping between pixel coordinates of an image
// and positions on the sky, using the gnomonic (TAN) projection standard in
// optical survey imagery (the DSS plates the paper's portal pulled use
// exactly this). Round-trips through FITS headers via the usual keywords
// (CRVAL1/2, CRPIX1/2, CDELT1/2, CTYPE1/2).
#pragma once

#include <optional>

#include "image/fits.hpp"
#include "sky/coords.hpp"

namespace nvo::image {

class Wcs {
 public:
  Wcs() = default;

  /// Builds a TAN WCS: `center` maps to reference pixel (crpix_x, crpix_y)
  /// (1-based, FITS convention), with `pixel_scale_deg` degrees per pixel.
  /// RA increases to the left (negative CDELT1) as on the sky.
  Wcs(const sky::Equatorial& center, double crpix_x, double crpix_y,
      double pixel_scale_deg);

  /// Convenience: reference pixel at the image center.
  static Wcs centered(const sky::Equatorial& center, int width, int height,
                      double pixel_scale_deg);

  const sky::Equatorial& reference() const { return crval_; }
  double pixel_scale_deg() const { return scale_deg_; }
  double pixel_scale_arcsec() const { return scale_deg_ * sky::kArcsecPerDeg; }

  /// Sky position of the (0-based) pixel coordinate (x, y). Fractional
  /// coordinates are allowed; (x, y) = crpix-1 maps to crval exactly.
  sky::Equatorial pixel_to_sky(double x, double y) const;

  /// Pixel coordinate (0-based) of a sky position.
  struct PixelXY {
    double x = 0.0;
    double y = 0.0;
  };
  PixelXY sky_to_pixel(const sky::Equatorial& p) const;

  /// Writes CRVAL/CRPIX/CDELT/CTYPE cards.
  void to_header(FitsHeader& header) const;

  /// Reads a TAN WCS from header cards; nullopt when keywords are missing.
  static std::optional<Wcs> from_header(const FitsHeader& header);

 private:
  sky::Equatorial crval_;
  double crpix_x_ = 1.0;  // 1-based, per FITS
  double crpix_y_ = 1.0;
  double scale_deg_ = 1.0 / 3600.0;  // |CDELT|
};

}  // namespace nvo::image
