// Descriptive statistics for the science analysis: the correlations and
// binned profiles behind Fig. 7 ("scatter plots to look for correlations
// between our morphology parameters and other galaxy characteristics").
#pragma once

#include <cstddef>
#include <vector>

namespace nvo::analysis {

double mean(const std::vector<double>& v);
double median(std::vector<double> v);  // by value: nth_element mutates
double stddev(const std::vector<double>& v);

/// Pearson linear correlation; 0 when either side is constant or sizes
/// mismatch.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (Pearson on fractional ranks, ties averaged).
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Fractional ranks with ties averaged (helper, exposed for tests).
std::vector<double> ranks(const std::vector<double>& v);

/// Equal-width binned profile of y against x.
struct BinnedPoint {
  double x_center = 0.0;
  double y_mean = 0.0;
  double y_stddev = 0.0;
  std::size_t count = 0;
};
std::vector<BinnedPoint> binned_profile(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        std::size_t bins, double x_min, double x_max);

/// Fraction of `flags` true within each bin of x (e.g. early-type fraction
/// vs radius).
struct BinnedFraction {
  double x_center = 0.0;
  double fraction = 0.0;
  std::size_t count = 0;
};
std::vector<BinnedFraction> binned_fraction(const std::vector<double>& x,
                                            const std::vector<bool>& flags,
                                            std::size_t bins, double x_min,
                                            double x_max);

}  // namespace nvo::analysis
