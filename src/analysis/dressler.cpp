#include "analysis/dressler.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace nvo::analysis {

bool classify_early_type(double concentration, double asymmetry,
                         const ClassifierThresholds& thresholds) {
  return concentration - thresholds.asymmetry_weight * asymmetry >=
         thresholds.score_threshold;
}

std::vector<double> local_density_arcmin2(const std::vector<sky::Equatorial>& positions,
                                          const sky::Equatorial& center, int k) {
  const std::size_t n = positions.size();
  std::vector<double> out(n, 0.0);
  if (n < 2) return out;
  const int kk = std::min<int>(k, static_cast<int>(n) - 1);

  // Tangent-plane coordinates (arcmin) about the cluster center make the
  // neighbor distances Euclidean.
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sky::TangentPlane tp = sky::project_tan(center, positions[i]);
    xs[i] = tp.xi_deg * 60.0;
    ys[i] = tp.eta_deg * 60.0;
  }
  std::vector<double> d2(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = xs[j] - xs[i];
      const double dy = ys[j] - ys[i];
      d2[j] = dx * dx + dy * dy;
    }
    d2[i] = 1e300;  // exclude self
    std::nth_element(d2.begin(), d2.begin() + (kk - 1), d2.end());
    const double dk = std::sqrt(std::max(d2[kk - 1], 1e-6));
    out[i] = static_cast<double>(kk) / (3.14159265358979323846 * dk * dk);
  }
  return out;
}

bool DresslerReport::relation_detected() const {
  return early_fraction_core > early_fraction_edge &&
         spearman_asymmetry_density < 0.0 && spearman_concentration_density > 0.0 &&
         spearman_asymmetry_radius > 0.0;
}

Expected<DresslerReport> analyze_cluster(const votable::Table& merged_catalog,
                                         const sky::Equatorial& cluster_center,
                                         std::size_t radial_bins,
                                         const ClassifierThresholds& thresholds) {
  for (const char* col : {"id", "ra", "dec", "valid", "concentration", "asymmetry"}) {
    if (!merged_catalog.column_index(col)) {
      return Error(ErrorCode::kInvalidArgument,
                   std::string("catalog lacks column ") + col);
    }
  }

  DresslerReport report;
  std::vector<sky::Equatorial> positions;
  for (std::size_t i = 0; i < merged_catalog.num_rows(); ++i) {
    const auto valid = merged_catalog.cell(i, "valid").as_bool();
    if (!valid || !*valid) {
      ++report.invalid_dropped;
      continue;
    }
    AnalysisGalaxy g;
    g.id = merged_catalog.cell(i, "id").as_string().value_or("");
    g.position.ra_deg = merged_catalog.cell(i, "ra").as_number().value_or(0.0);
    g.position.dec_deg = merged_catalog.cell(i, "dec").as_number().value_or(0.0);
    g.concentration = merged_catalog.cell(i, "concentration").as_number().value_or(0.0);
    g.asymmetry = merged_catalog.cell(i, "asymmetry").as_number().value_or(0.0);
    g.surface_brightness =
        merged_catalog.cell(i, "surface_brightness").as_number().value_or(0.0);
    g.radius_arcmin =
        sky::angular_separation_deg(cluster_center, g.position) * 60.0;
    g.early_type = classify_early_type(g.concentration, g.asymmetry, thresholds);
    positions.push_back(g.position);
    report.galaxies.push_back(std::move(g));
  }
  if (report.galaxies.size() < 8) {
    return Error(ErrorCode::kInvalidArgument,
                 format("only %zu valid galaxies — too few for the analysis",
                        report.galaxies.size()));
  }

  const std::vector<double> density =
      local_density_arcmin2(positions, cluster_center);
  std::vector<double> radii, log_density, asym, conc;
  std::vector<bool> early;
  for (std::size_t i = 0; i < report.galaxies.size(); ++i) {
    AnalysisGalaxy& g = report.galaxies[i];
    g.log_local_density = std::log10(std::max(density[i], 1e-6));
    radii.push_back(g.radius_arcmin);
    log_density.push_back(g.log_local_density);
    asym.push_back(g.asymmetry);
    conc.push_back(g.concentration);
    early.push_back(g.early_type);
  }

  const double r_max = *std::max_element(radii.begin(), radii.end()) * 1.0001;
  report.early_fraction_vs_radius =
      binned_fraction(radii, early, radial_bins, 0.0, r_max);
  const double d_lo = *std::min_element(log_density.begin(), log_density.end());
  const double d_hi = *std::max_element(log_density.begin(), log_density.end()) * 1.0001;
  report.early_fraction_vs_density =
      binned_fraction(log_density, early, radial_bins, d_lo,
                      d_hi > d_lo ? d_hi : d_lo + 1.0);

  report.spearman_asymmetry_density = spearman(log_density, asym);
  report.spearman_concentration_density = spearman(log_density, conc);
  report.spearman_asymmetry_radius = spearman(radii, asym);

  // Core and edge fractions from the first / last populated radial bins.
  for (const BinnedFraction& b : report.early_fraction_vs_radius) {
    if (b.count > 0) {
      report.early_fraction_core = b.fraction;
      break;
    }
  }
  for (auto it = report.early_fraction_vs_radius.rbegin();
       it != report.early_fraction_vs_radius.rend(); ++it) {
    if (it->count > 0) {
      report.early_fraction_edge = it->fraction;
      break;
    }
  }
  return report;
}

std::string report_to_text(const DresslerReport& report) {
  std::string out;
  out += format("galaxies analyzed: %zu (dropped invalid: %zu)\n",
                report.galaxies.size(), report.invalid_dropped);
  out += "early-type fraction vs cluster radius (arcmin):\n";
  for (const BinnedFraction& b : report.early_fraction_vs_radius) {
    out += format("  r=%6.2f  f_early=%.3f  (n=%zu)\n", b.x_center, b.fraction,
                  b.count);
  }
  out += "early-type fraction vs log10 local density:\n";
  for (const BinnedFraction& b : report.early_fraction_vs_density) {
    out += format("  logS=%6.2f  f_early=%.3f  (n=%zu)\n", b.x_center, b.fraction,
                  b.count);
  }
  out += format("spearman(asymmetry, density)     = %+.3f (expect < 0)\n",
                report.spearman_asymmetry_density);
  out += format("spearman(concentration, density) = %+.3f (expect > 0)\n",
                report.spearman_concentration_density);
  out += format("spearman(asymmetry, radius)      = %+.3f (expect > 0)\n",
                report.spearman_asymmetry_radius);
  out += format("early fraction: core %.3f vs edge %.3f\n", report.early_fraction_core,
                report.early_fraction_edge);
  out += format("density-morphology relation detected: %s\n",
                report.relation_detected() ? "YES" : "no");
  return out;
}

}  // namespace nvo::analysis
