// The §5 campaign: "we used our prototype to separately analyze eight
// different galaxy clusters ... 1152 compute jobs ... 1525 images,
// corresponding to 30MB of data ... the transfer of 2295 files" on three
// Condor pools. Campaign wires the whole system together — universe,
// federation, grid, RLS/TC, compute service, portal — runs every cluster,
// and accumulates the same accounting columns the paper reports, plus the
// per-cluster Dressler analysis.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/dressler.hpp"
#include "common/expected.hpp"
#include "grid/grid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pegasus/rls.hpp"
#include "pegasus/tc.hpp"
#include "portal/compute_service.hpp"
#include "portal/portal.hpp"
#include "services/chaos.hpp"
#include "services/federation.hpp"
#include "services/http.hpp"
#include "services/replica_cache.hpp"
#include "services/resilience.hpp"
#include "sim/universe.hpp"

namespace nvo::analysis {

struct CampaignConfig {
  std::uint64_t seed = 20031115;
  bool batched_cutouts = false;   ///< legacy switch: force the wide-cone SIA mode
  /// Cutout metadata retrieval mode when batched_cutouts is off (coalesced
  /// patch batching by default; kPerGalaxy reproduces the paper's loop).
  portal::CutoutQueryMode cutout_mode = portal::CutoutQueryMode::kCoalesced;
  std::size_t compute_threads = 2;
  double corruption_rate = 0.04;  ///< bad-cutout fraction
  pegasus::SitePolicy site_policy = pegasus::SitePolicy::kRandom;
  /// Scale factor on cluster sizes (1.0 = the paper's 37..561 members);
  /// smaller values keep unit tests fast.
  double population_scale = 1.0;
  services::RetryPolicy retry;    ///< per-request tolerance (portal + compute)
  services::BreakerPolicy breaker;
  services::ChaosSchedule chaos;  ///< scripted fault windows (empty = none)
  bool enable_mirror = true;      ///< register the DSS/cutout failover mirror
  /// Compute-service image store (sharded LRU). Tests shrink byte_budget to
  /// force eviction and verify the science is cache-invariant.
  services::ReplicaCacheConfig image_cache;
  /// Optional trace-span sink, threaded into the portal and the compute
  /// service (the fabric's SimClock is attached automatically). Must
  /// outlive the campaign.
  obs::Tracer* tracer = nullptr;
  /// How each cluster's workflow execution is scheduled against its image
  /// staging (portal::ExecutionMode). kPipelined (default) dispatches a
  /// galaxy's compute node the moment its cutout lands and merges finished
  /// rows incrementally; kBarriered stages everything first (the overlap
  /// baseline). Catalog bytes are identical either way.
  portal::ExecutionMode execution_mode = portal::ExecutionMode::kPipelined;
  /// Pipelined mode: concurrent stage-in channels on the sim clock.
  std::size_t stage_in_window = 8;
  /// Durable checkpoint journal path; empty disables journaling. When set,
  /// staged-replica registrations, DAG node completions, per-galaxy
  /// morphology rows, and finished cluster catalogs are persisted as they
  /// happen, and run() resumes from whatever the journal already holds — a
  /// killed campaign restarted on the same journal re-executes only the
  /// unfinished work and produces a byte-identical catalog.
  std::string journal_path;
  /// In-request rescue-DAG rounds after a failed execution (0 = off). With
  /// site-outage chaos scripted, each round re-maps the unfinished portion
  /// onto surviving pools (see ChaosSchedule::site_outage).
  std::size_t rescue_rounds = 0;
  /// Straggler rebalancing: idle pools pull queued-but-unstarted jobs from
  /// backlogged ones in the simulated executor.
  bool work_stealing = false;
  /// Hedged stage-ins in the pipelined executor: slow archive fetches are
  /// re-issued against the mirror after a quantile-derived delay, first
  /// verified success wins (portal::ComputeServiceConfig::hedge_stage_ins).
  bool hedge_stage_ins = false;
  double hedge_quantile = 0.95;
  std::size_t hedge_min_samples = 8;
};

struct ClusterOutcome {
  std::string name;
  std::size_t galaxies = 0;
  std::size_t valid = 0;
  std::size_t invalid = 0;
  std::size_t compute_jobs = 0;
  std::size_t transfer_jobs = 0;
  std::size_t register_jobs = 0;
  double makespan_seconds = 0.0;  ///< simulated
  std::uint64_t retries = 0;        ///< HTTP re-attempts (portal + staging)
  std::uint64_t breaker_trips = 0;
  std::uint64_t failovers = 0;      ///< requests served by the mirror
  std::size_t archives_degraded = 0;  ///< archives that did not deliver
  std::uint64_t integrity_failures = 0;  ///< corrupted payloads caught staging
  std::uint64_t quarantine_skips = 0;    ///< fetches rerouted past quarantine
  bool resumed_from_journal = false;  ///< catalog served whole from the journal
  std::size_t rows_resumed = 0;       ///< morphology rows recovered, not computed
  std::size_t nodes_resumed = 0;      ///< DAG nodes skipped as journal-complete
  /// Exact output VOTable bytes as served by the compute service; the
  /// byte-identity guarantees (corruption windows, kill/resume) are
  /// asserted on this, not on a re-serialized table.
  std::string catalog_xml;
  portal::PortalTrace portal_trace;
  DresslerReport dressler;
};

struct CampaignReport {
  std::vector<ClusterOutcome> clusters;
  std::size_t total_galaxies = 0;
  std::size_t min_galaxies = 0;
  std::size_t max_galaxies = 0;
  std::size_t total_compute_jobs = 0;
  std::size_t total_transfer_jobs = 0;
  std::size_t total_register_jobs = 0;
  std::size_t total_images_fetched = 0;
  std::size_t total_bytes_transferred = 0;  ///< over the HTTP fabric
  std::size_t clusters_with_relation = 0;
  double total_sim_seconds = 0.0;
  std::size_t pools_used = 0;

  // Resilience accounting for the whole campaign.
  std::uint64_t total_retries = 0;
  std::uint64_t total_breaker_trips = 0;
  std::uint64_t total_failovers = 0;
  std::uint64_t total_integrity_failures = 0;  ///< corruptions caught staging
  std::uint64_t total_quarantine_skips = 0;
  std::size_t clusters_resumed = 0;     ///< catalogs served from the journal
  std::size_t total_rows_resumed = 0;
  std::size_t total_nodes_resumed = 0;
  std::size_t archives_degraded = 0;  ///< degraded archive interactions, summed
  /// Every degraded archive interaction, labelled "<cluster>/<archive>".
  struct Degradation {
    std::string cluster;
    portal::ArchiveStatus status;
  };
  std::vector<Degradation> degradations;

  std::string to_text() const;
};

/// Owns the full stack for one campaign run.
class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  /// Runs every cluster of the paper campaign through the portal.
  Expected<CampaignReport> run();

  /// Runs a single cluster.
  Expected<ClusterOutcome> run_cluster(const std::string& name);

  // Internals, exposed for examples and benchmarks.
  const sim::Universe& universe() const { return *universe_; }
  services::HttpFabric& fabric() { return *fabric_; }
  /// The registered archive federation (endpoint URLs + mirror host) —
  /// front-ends layered over this campaign (portal::AsyncPortal) build
  /// their per-tenant portals from it.
  const services::Federation& federation() const { return federation_; }

  /// Registers the whole stack's metrics (fabric + routes, portal client,
  /// compute client, replica cache, kernel pool) in `registry` under the
  /// DESIGN.md §9 names. The campaign must outlive the registry's use.
  void register_metrics(obs::MetricsRegistry& registry) const;

  grid::Grid& grid() { return *grid_; }
  pegasus::ReplicaLocationService& rls() { return *rls_; }
  portal::Portal& portal() { return *portal_; }
  portal::MorphologyService& compute_service() { return *compute_; }
  /// The checkpoint journal (null when journal_path is empty or unopenable).
  grid::CheckpointJournal* journal() { return journal_.get(); }

 private:
  CampaignConfig config_;
  std::unique_ptr<sim::Universe> universe_;
  std::unique_ptr<services::HttpFabric> fabric_;
  services::Federation federation_;
  std::unique_ptr<grid::Grid> grid_;
  std::unique_ptr<pegasus::ReplicaLocationService> rls_;
  std::unique_ptr<pegasus::TransformationCatalog> tc_;
  std::unique_ptr<grid::CheckpointJournal> journal_;
  std::unique_ptr<portal::MorphologyService> compute_;
  std::unique_ptr<portal::Portal> portal_;
};

}  // namespace nvo::analysis
