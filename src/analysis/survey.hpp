// Survey-scale morphology sweep: 10^5..10^6 galaxies through the SoA
// kernel with bounded memory. Where the §5 campaign routes every cutout
// through the full grid data plane (federation queries, replica staging,
// Pegasus planning, simulated DAGMan), the survey path is the throughput
// lane: clusters are realized lazily from their specs, cutouts are
// synthesized cache-less and measured once, per-cluster results spill to
// id-sorted runs, and a k-way streaming merge serializes the catalog
// row-by-row — peak RSS stays flat in the survey size.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "core/galmorph.hpp"
#include "sim/galaxy.hpp"
#include "votable/table.hpp"

namespace nvo::analysis {

struct SurveyConfig {
  std::uint64_t seed = 20031115;
  std::size_t target_galaxies = 100000;
  /// Kernel fan-out across a private thread pool (1 = caller only).
  std::size_t compute_threads = 1;
  int cutout_size = 64;
  double corruption_rate = 0.04;
  core::GalMorphArgs args;        ///< cosmology/photometry defaults
  /// Cutout synthesis options. Survey-grade sampling by default: the §5
  /// pointed-observation default integrates every pixel on a 3x3 sub-grid,
  /// which is the right fidelity for 1525 cutouts and pure overhead for
  /// 10^6 — drive-scan pixels are single samples. Center-pixel sampling
  /// changes only the synthetic inputs (both survey paths see identical
  /// frames); the kernel and the campaign lane are untouched.
  sim::RenderOptions render = [] {
    sim::RenderOptions r;
    r.supersample = 1;
    return r;
  }();
  /// Maximum spill runs merged in one pass; deeper run sets are merged
  /// hierarchically into intermediate runs first.
  std::size_t merge_fan_in = 64;
  /// Directory for sorted spill runs; empty keeps runs as in-memory
  /// strings (tests and small footprints).
  std::string scratch_dir;
  /// Output catalog path; empty collects the catalog XML in the report
  /// instead (byte-identity tests compare that string).
  std::string catalog_path;
  std::string table_name = "SURVEY_MORPH";
};

struct SurveyReport {
  std::size_t clusters = 0;
  std::size_t galaxies = 0;
  std::size_t valid = 0;
  std::size_t invalid = 0;
  std::size_t spill_runs = 0;      ///< first-level runs written
  std::size_t spill_bytes = 0;     ///< encoded bytes spilled (all levels)
  double compute_seconds = 0.0;    ///< synthesis + kernel + run encoding
  double merge_seconds = 0.0;      ///< k-way merge + catalog serialization
  /// /proc/self/status readings (kB; zero on platforms without procfs).
  std::size_t vm_rss_start_kb = 0;
  std::size_t vm_rss_end_kb = 0;
  std::size_t vm_hwm_kb = 0;       ///< process high-water mark after the run
  std::string catalog_xml;         ///< set when catalog_path is empty
  std::string catalog_path;        ///< echo of the config (when file-backed)
};

/// Current VmRSS / VmHWM of this process in kB (0 when unavailable).
/// Exposed for the survey bench's flat-memory gate.
std::size_t process_vm_rss_kb();
std::size_t process_vm_hwm_kb();

class Survey {
 public:
  explicit Survey(SurveyConfig config) : config_(std::move(config)) {}

  const SurveyConfig& config() const { return config_; }

  /// The streaming path: bounded-memory spill + k-way merge. Fails only on
  /// I/O errors (unwritable scratch/catalog paths); bad cutouts become
  /// valid=false rows, never errors.
  Expected<SurveyReport> run();

  /// Reference path: identical measurements materialized in one vector,
  /// sorted by id, and serialized through concat_results/to_votable_xml.
  /// The byte-identity oracle for run() — and the unbounded-memory
  /// baseline its flat RSS is measured against.
  Expected<SurveyReport> run_in_memory();

 private:
  SurveyConfig config_;
};

namespace detail {

/// Spill-run codec and in-memory k-way merge, exposed so the survey bench
/// can pin the merge inner loop's allocation count to zero with heap
/// counters. encode appends one record line ("<id> 1 <6x hex64>\n" or
/// "<id> 0\n"); decode fills a reusable 8-cell concat_results-shaped row,
/// recycling the id cell's string storage.
void encode_run_line(const core::GalMorphResult& r, std::string& out);
bool decode_run_line(const std::string& line, votable::Row& row);

/// Merges id-sorted encoded runs (each one whole in-memory run), invoking
/// `sink` with each record line in ascending id order. Steady-state cost
/// per record: one heap comparison + the sink — no allocations beyond the
/// per-call source/heap setup.
Status merge_encoded_runs(const std::vector<const std::string*>& runs,
                          const std::function<void(const std::string&)>& sink);

}  // namespace detail

}  // namespace nvo::analysis
