// The science analysis of paper §2/§5: "our science model examines the
// distribution of star formation indicators ... as a function of cluster
// radius, local density, and x-ray surface brightness", culminating in the
// rediscovery of the Dressler (1980) density-morphology relation. Operates
// on the portal's merged catalog (positions + computed morphology).
#pragma once

#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "common/expected.hpp"
#include "sky/coords.hpp"
#include "votable/table.hpp"

namespace nvo::analysis {

/// One galaxy prepared for analysis.
struct AnalysisGalaxy {
  std::string id;
  sky::Equatorial position;
  double radius_arcmin = 0.0;        ///< projected cluster-centric distance
  double log_local_density = 0.0;    ///< log10 Sigma_k (gal / arcmin^2)
  double concentration = 0.0;
  double asymmetry = 0.0;
  double surface_brightness = 0.0;
  bool early_type = false;           ///< classified from the measured indices
};

/// Morphological classification. Early types are concentrated and
/// symmetric; late types diffuse and asymmetric (Conselice 2003 orderings).
/// A linear discriminant in the (C, A) plane — early iff
/// C - asymmetry_weight * A >= score_threshold — separates the measured
/// populations better than independent cuts: S0s sit at intermediate C but
/// very low A, while spirals with comparable C carry higher A.
struct ClassifierThresholds {
  double score_threshold = 2.6;
  double asymmetry_weight = 4.0;
};
bool classify_early_type(double concentration, double asymmetry,
                         const ClassifierThresholds& thresholds = {});

/// Projected k-NN local density Sigma_k = k / (pi d_k^2) in galaxies per
/// square arcminute, Dressler's estimator (k defaults to 10; clipped to
/// n-1 for small samples).
std::vector<double> local_density_arcmin2(const std::vector<sky::Equatorial>& positions,
                                          const sky::Equatorial& center, int k = 10);

/// The full analysis product.
struct DresslerReport {
  std::vector<AnalysisGalaxy> galaxies;   ///< valid measurements only
  std::size_t invalid_dropped = 0;

  // The relation, three ways.
  std::vector<BinnedFraction> early_fraction_vs_radius;    ///< arcmin bins
  std::vector<BinnedFraction> early_fraction_vs_density;   ///< log-density bins
  double spearman_asymmetry_density = 0.0;   ///< expected negative
  double spearman_concentration_density = 0.0;  ///< expected positive
  double spearman_asymmetry_radius = 0.0;    ///< expected positive
  double early_fraction_core = 0.0;  ///< innermost radial bin
  double early_fraction_edge = 0.0;  ///< outermost populated radial bin

  /// True when every qualitative Dressler signature holds (the §5 claim).
  bool relation_detected() const;
};

/// Runs the analysis on a merged catalog. Required columns: id, ra, dec,
/// valid, concentration, asymmetry, surface_brightness (the portal's merge
/// product). Rows with valid != true are dropped (counted).
Expected<DresslerReport> analyze_cluster(const votable::Table& merged_catalog,
                                         const sky::Equatorial& cluster_center,
                                         std::size_t radial_bins = 5,
                                         const ClassifierThresholds& thresholds = {});

/// Plain-text rendering of the report (the rows a paper table would show).
std::string report_to_text(const DresslerReport& report);

}  // namespace nvo::analysis
