#include "analysis/campaign.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "portal/transforms.hpp"
#include "services/obs_bridge.hpp"

namespace nvo::analysis {

Campaign::Campaign(CampaignConfig config) : config_(config) {
  sim::UniverseConfig ucfg;
  ucfg.seed = config_.seed;
  ucfg.corruption_rate = config_.corruption_rate;
  universe_ = std::make_unique<sim::Universe>(
      sim::Universe::make_paper_campaign(config_.seed, config_.population_scale));
  // make_paper_campaign builds with default config; rebuild with ours when
  // the corruption rate differs.
  if (config_.corruption_rate != universe_->config().corruption_rate) {
    sim::UniverseConfig custom = universe_->config();
    custom.corruption_rate = config_.corruption_rate;
    auto rebuilt = std::make_unique<sim::Universe>(custom);
    for (const sim::Cluster& c : universe_->clusters()) rebuilt->add_cluster(c.spec);
    universe_ = std::move(rebuilt);
  }

  fabric_ = std::make_unique<services::HttpFabric>(config_.seed ^ 0xFAB);
  if (config_.tracer) config_.tracer->set_sim_clock(&fabric_->sim_clock());
  services::FederationOptions fopts;
  fopts.with_mirror = config_.enable_mirror;
  federation_ = services::register_federation(*fabric_, *universe_, fopts);
  if (!config_.chaos.empty()) services::install_chaos(*fabric_, config_.chaos);
  grid_ = std::make_unique<grid::Grid>(grid::make_paper_grid());
  rls_ = std::make_unique<pegasus::ReplicaLocationService>();
  tc_ = std::make_unique<pegasus::TransformationCatalog>();

  if (!config_.journal_path.empty()) {
    auto journal = grid::CheckpointJournal::open(config_.journal_path);
    if (journal.ok()) {
      journal_ = std::move(journal.value());
    } else {
      // A campaign without durability is still a campaign; warn and run.
      log_warn("campaign", "checkpoint journal unavailable: " +
                               journal.error().to_string());
    }
  }

  portal::ComputeServiceConfig scfg;
  scfg.seed = config_.seed ^ 0x5E47;
  scfg.compute_threads = config_.compute_threads;
  scfg.planner.site_policy = config_.site_policy;
  scfg.retry = config_.retry;
  scfg.breaker = config_.breaker;
  scfg.replica_cache = config_.image_cache;
  scfg.execution_mode = config_.execution_mode;
  scfg.stage_in_window = config_.stage_in_window;
  scfg.tracer = config_.tracer;
  scfg.journal = journal_.get();
  scfg.abort_after_nodes = config_.chaos.kill_after_node_completions();
  scfg.failure.site_outage_at_s = config_.chaos.site_outages();
  scfg.rescue_rounds = config_.rescue_rounds;
  scfg.work_stealing = config_.work_stealing;
  scfg.hedge_stage_ins = config_.hedge_stage_ins;
  scfg.hedge_quantile = config_.hedge_quantile;
  scfg.hedge_min_samples = config_.hedge_min_samples;
  if (!federation_.mirror_host.empty()) {
    scfg.mirrors[services::Federation::kMastHost] = federation_.mirror_host;
  }
  compute_ = std::make_unique<portal::MorphologyService>(*fabric_, *grid_, *rls_,
                                                         *tc_, scfg);

  portal::PortalConfig pcfg;
  pcfg.cutout_query = config_.batched_cutouts ? portal::CutoutQueryMode::kWideCone
                                              : config_.cutout_mode;
  pcfg.retry = config_.retry;
  pcfg.breaker = config_.breaker;
  pcfg.tracer = config_.tracer;
  portal_ = std::make_unique<portal::Portal>(*fabric_, federation_, *compute_, pcfg);
  for (const sim::Cluster& c : universe_->clusters()) {
    portal::ClusterEntry entry;
    entry.name = c.name();
    entry.position = c.center();
    entry.redshift = c.redshift();
    entry.search_radius_deg = c.spec.extent_arcmin / 60.0;
    portal_->add_cluster(entry);
  }
}

void Campaign::register_metrics(obs::MetricsRegistry& registry) const {
  services::register_metrics(registry, *fabric_, "fabric");
  services::register_metrics(registry, portal_->client(), "client.portal");
  compute_->register_metrics(registry);
  if (journal_) {
    const grid::CheckpointJournal* j = journal_.get();
    registry.register_counter("checkpoint.records_loaded", [j] {
      return static_cast<double>(j->stats().records_loaded);
    });
    registry.register_counter("checkpoint.truncated_records", [j] {
      return static_cast<double>(j->stats().truncated_records);
    });
    registry.register_counter("checkpoint.appends", [j] {
      return static_cast<double>(j->stats().appends);
    });
  }
}

Expected<ClusterOutcome> Campaign::run_cluster(const std::string& name) {
  auto outcome = portal_->run_analysis(name);
  if (!outcome.ok()) return outcome.error();

  ClusterOutcome out;
  out.name = name;
  out.portal_trace = outcome->trace;
  out.galaxies = outcome->trace.galaxies;
  out.valid = outcome->trace.valid;
  out.invalid = outcome->trace.invalid;

  out.retries = outcome->trace.retries;
  out.breaker_trips = outcome->trace.breaker_trips;
  out.failovers = outcome->trace.failovers;
  out.archives_degraded = outcome->trace.archives_degraded();

  // Looked up by the id carried in the portal trace, not last_trace():
  // interleaved runs from other front-ends (the async portal) may have
  // pushed newer requests through the shared service in the meantime.
  if (const portal::ServiceTrace* trace =
          compute_->trace(outcome->trace.compute_request_id)) {
    out.compute_jobs = trace->execution.compute_jobs;
    out.transfer_jobs = trace->execution.transfer_jobs;
    out.register_jobs = trace->execution.register_jobs;
    out.makespan_seconds = trace->execution.makespan_seconds;
    out.retries += trace->staging_retries;
    out.breaker_trips += trace->staging_breaker_trips;
    out.failovers += trace->staging_failovers;
    out.integrity_failures = trace->staging_integrity_failures;
    out.quarantine_skips = trace->staging_quarantine_skips;
    out.resumed_from_journal = trace->journal_hit;
    out.rows_resumed = trace->rows_resumed;
    out.nodes_resumed = trace->nodes_resumed;
  }
  if (const std::string* xml =
          compute_->result_xml(portal::output_votable_lfn(name))) {
    out.catalog_xml = *xml;
  }

  const sim::Cluster* cluster = universe_->find_cluster(name);
  auto dressler = analyze_cluster(outcome->catalog, cluster->center());
  if (dressler.ok()) {
    out.dressler = std::move(dressler.value());
  }
  return out;
}

Expected<CampaignReport> Campaign::run() {
  CampaignReport report;
  // Counters start clean for this run. The simulated clock is NOT touched
  // (reset_metrics no longer moves time), so breaker cool-downs and chaos
  // fault windows keep their phase across consecutive runs.
  fabric_->reset_metrics();
  report.min_galaxies = SIZE_MAX;
  report.clusters.reserve(universe_->clusters().size());
  for (const sim::Cluster& c : universe_->clusters()) {
    auto outcome = run_cluster(c.name());
    if (!outcome.ok()) return outcome.error();
    const ClusterOutcome& o = outcome.value();
    report.total_galaxies += o.galaxies;
    report.min_galaxies = std::min(report.min_galaxies, o.galaxies);
    report.max_galaxies = std::max(report.max_galaxies, o.galaxies);
    report.total_compute_jobs += o.compute_jobs;
    report.total_transfer_jobs += o.transfer_jobs;
    report.total_register_jobs += o.register_jobs;
    report.total_sim_seconds += o.makespan_seconds + o.portal_trace.total_ms() / 1000.0;
    if (o.dressler.relation_detected()) ++report.clusters_with_relation;
    report.total_retries += o.retries;
    report.total_breaker_trips += o.breaker_trips;
    report.total_failovers += o.failovers;
    report.total_integrity_failures += o.integrity_failures;
    report.total_quarantine_skips += o.quarantine_skips;
    if (o.resumed_from_journal) ++report.clusters_resumed;
    report.total_rows_resumed += o.rows_resumed;
    report.total_nodes_resumed += o.nodes_resumed;
    report.archives_degraded += o.archives_degraded;
    for (const portal::ArchiveStatus& a : o.portal_trace.archives) {
      if (a.degraded()) report.degradations.push_back({o.name, a});
    }
    report.clusters.push_back(std::move(outcome.value()));
  }
  // Every processed galaxy corresponds to one cutout image; the fabric
  // metrics carry total bytes over the simulated WAN.
  std::size_t images = 0;
  for (const ClusterOutcome& o : report.clusters) images += o.galaxies;
  report.total_images_fetched = images;
  report.total_bytes_transferred = fabric_->metrics().bytes_transferred;
  report.pools_used = grid_->sites().size();
  return report;
}

std::string CampaignReport::to_text() const {
  std::string out;
  out += "cluster    galaxies  valid  invalid  jobs  transfers  retries  makespan(sim s)  relation\n";
  for (const ClusterOutcome& c : clusters) {
    out += format("%-9s %8zu %6zu %8zu %5zu %10zu %8llu %16.1f  %s\n", c.name.c_str(),
                  c.galaxies, c.valid, c.invalid, c.compute_jobs, c.transfer_jobs,
                  static_cast<unsigned long long>(c.retries), c.makespan_seconds,
                  c.dressler.relation_detected() ? "YES" : "no");
  }
  out += format("clusters: %zu, galaxies: %zu (min %zu, max %zu)\n", clusters.size(),
                total_galaxies, min_galaxies, max_galaxies);
  out += format("compute jobs: %zu, transfers: %zu, registrations: %zu\n",
                total_compute_jobs, total_transfer_jobs, total_register_jobs);
  out += format("images fetched: %zu, bytes over fabric: %zu\n", total_images_fetched,
                total_bytes_transferred);
  out += format("pools used: %zu, total simulated time: %.1f s\n", pools_used,
                total_sim_seconds);
  out += format("retries: %llu, breaker trips: %llu, mirror failovers: %llu\n",
                static_cast<unsigned long long>(total_retries),
                static_cast<unsigned long long>(total_breaker_trips),
                static_cast<unsigned long long>(total_failovers));
  if (total_integrity_failures > 0 || total_quarantine_skips > 0) {
    out += format("corruptions caught: %llu, quarantine reroutes: %llu\n",
                  static_cast<unsigned long long>(total_integrity_failures),
                  static_cast<unsigned long long>(total_quarantine_skips));
  }
  if (clusters_resumed > 0 || total_rows_resumed > 0 || total_nodes_resumed > 0) {
    out += format(
        "resumed from journal: %zu clusters, %zu rows, %zu DAG nodes\n",
        clusters_resumed, total_rows_resumed, total_nodes_resumed);
  }
  if (!degradations.empty()) {
    out += format("degraded archive interactions: %zu\n", archives_degraded);
    for (const Degradation& d : degradations) {
      out += format("  %s/%s (%s): attempts %llu, retries %llu, skipped: %s\n",
                    d.cluster.c_str(), d.status.archive.c_str(),
                    d.status.endpoint.c_str(),
                    static_cast<unsigned long long>(d.status.attempted),
                    static_cast<unsigned long long>(d.status.retries),
                    d.status.skipped_reason.c_str());
    }
  }
  out += format("clusters showing the density-morphology relation: %zu / %zu\n",
                clusters_with_relation, clusters.size());
  return out;
}

}  // namespace nvo::analysis
