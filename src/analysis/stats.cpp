#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace nvo::analysis {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> out(v.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson(ranks(x), ranks(y));
}

std::vector<BinnedPoint> binned_profile(const std::vector<double>& x,
                                        const std::vector<double>& y,
                                        std::size_t bins, double x_min, double x_max) {
  std::vector<BinnedPoint> out(bins);
  if (bins == 0 || x.size() != y.size() || x_max <= x_min) return {};
  const double width = (x_max - x_min) / static_cast<double>(bins);
  std::vector<std::vector<double>> buckets(bins);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < x_min || x[i] >= x_max) continue;
    const auto b = static_cast<std::size_t>((x[i] - x_min) / width);
    buckets[std::min(b, bins - 1)].push_back(y[i]);
  }
  for (std::size_t b = 0; b < bins; ++b) {
    out[b].x_center = x_min + (static_cast<double>(b) + 0.5) * width;
    out[b].y_mean = mean(buckets[b]);
    out[b].y_stddev = stddev(buckets[b]);
    out[b].count = buckets[b].size();
  }
  return out;
}

std::vector<BinnedFraction> binned_fraction(const std::vector<double>& x,
                                            const std::vector<bool>& flags,
                                            std::size_t bins, double x_min,
                                            double x_max) {
  std::vector<BinnedFraction> out(bins);
  if (bins == 0 || x.size() != flags.size() || x_max <= x_min) return {};
  const double width = (x_max - x_min) / static_cast<double>(bins);
  std::vector<std::size_t> total(bins, 0);
  std::vector<std::size_t> hits(bins, 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < x_min || x[i] >= x_max) continue;
    const auto b = std::min(static_cast<std::size_t>((x[i] - x_min) / width), bins - 1);
    ++total[b];
    if (flags[i]) ++hits[b];
  }
  for (std::size_t b = 0; b < bins; ++b) {
    out[b].x_center = x_min + (static_cast<double>(b) + 0.5) * width;
    out[b].count = total[b];
    out[b].fraction =
        total[b] > 0 ? static_cast<double>(hits[b]) / static_cast<double>(total[b]) : 0.0;
  }
  return out;
}

}  // namespace nvo::analysis
