#include "analysis/survey.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <numeric>
#include <string_view>
#include <vector>

#include "common/strings.hpp"
#include "grid/threadpool.hpp"
#include "sim/cluster.hpp"
#include "sim/survey.hpp"
#include "sim/universe.hpp"
#include "votable/votable_io.hpp"

namespace nvo::analysis {

namespace {

std::size_t read_proc_status_kb(const char* key) {
  std::ifstream f("/proc/self/status");
  if (!f) return 0;
  std::string line;
  const std::string_view want(key);
  while (std::getline(f, line)) {
    if (std::string_view(line).substr(0, want.size()) != want) continue;
    std::size_t kb = 0;
    for (const char c : line) {
      if (c >= '0' && c <= '9') kb = kb * 10 + static_cast<std::size_t>(c - '0');
    }
    return kb;
  }
  return 0;
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// Spill-run codec. One text line per galaxy:
//
//   <id> 1 <sb> <C> <A> <r_p> <snr> <kpc/arcsec>
//   <id> 0
//
// with each double written as its 16-hex-digit IEEE-754 bit pattern, so the
// decode side reconstructs bit-identical values and the streamed catalog
// renders byte-identically to the in-memory concat_results path.
// ---------------------------------------------------------------------------

void append_hex_u64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xF]);
  }
}

void append_hex_double(std::string& out, double v) {
  append_hex_u64(out, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

namespace detail {

void encode_run_line(const core::GalMorphResult& r, std::string& out) {
  out += r.galaxy_id;
  if (!r.params.valid) {
    out += " 0\n";
    return;
  }
  out += " 1 ";
  append_hex_double(out, r.params.surface_brightness);
  out.push_back(' ');
  append_hex_double(out, r.params.concentration);
  out.push_back(' ');
  append_hex_double(out, r.params.asymmetry);
  out.push_back(' ');
  append_hex_double(out, r.params.petrosian_r);
  out.push_back(' ');
  append_hex_double(out, r.params.snr);
  out.push_back(' ');
  append_hex_double(out, r.kpc_per_arcsec);
  out.push_back('\n');
}

}  // namespace detail

namespace {

bool parse_hex_double(std::string_view text, double& out) {
  std::uint64_t bits = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), bits, 16);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  out = std::bit_cast<double>(bits);
  return true;
}

}  // namespace

namespace detail {

/// Decodes one run line into a reusable 8-cell catalog row (same column
/// order as core::concat_results). The id cell recycles its string storage,
/// so steady-state decoding performs zero heap allocations.
bool decode_run_line(const std::string& line, votable::Row& row) {
  using votable::DataType;
  using votable::Value;
  if (row.size() != 8) row.resize(8);
  const std::string_view s(line);
  const std::size_t sp = s.find(' ');
  if (sp == std::string_view::npos || sp + 1 >= s.size()) return false;
  if (!row[0].assign_parse(s.substr(0, sp), DataType::kString).ok()) return false;
  const bool valid = s[sp + 1] == '1';
  row[1] = Value::of_bool(valid);
  if (!valid) {
    for (std::size_t c = 2; c < 8; ++c) row[c] = Value();
    return true;
  }
  std::size_t pos = sp + 3;  // past " 1 "
  for (std::size_t c = 2; c < 8; ++c) {
    if (pos + 16 > s.size()) return false;
    double v = 0.0;
    if (!parse_hex_double(s.substr(pos, 16), v)) return false;
    row[c] = Value::of_double(v);
    pos += 17;  // 16 hex digits + separator
  }
  return true;
}

}  // namespace detail

namespace {

// ---------------------------------------------------------------------------
// Sorted runs and the k-way merge.
// ---------------------------------------------------------------------------

/// One id-sorted run, either spilled to a file or held as a string.
struct Run {
  std::string path;  ///< file-backed when non-empty
  std::string data;  ///< in-memory otherwise
};

/// Streaming reader over one run; the line buffer is reused across records.
struct RunSource {
  std::ifstream file;
  const std::string* mem = nullptr;
  std::size_t pos = 0;
  std::string line;

  bool open(const Run& run) {
    if (!run.path.empty()) {
      file.open(run.path, std::ios::binary);
      return static_cast<bool>(file);
    }
    mem = &run.data;
    pos = 0;
    return true;
  }

  bool advance() {
    if (mem) {
      if (pos >= mem->size()) return false;
      const std::size_t nl = mem->find('\n', pos);
      const std::size_t end = nl == std::string::npos ? mem->size() : nl;
      line.assign(*mem, pos, end - pos);
      pos = end + 1;
    } else if (!std::getline(file, line)) {
      return false;
    }
    return !line.empty();
  }

  std::string_view id() const {
    const std::string_view s(line);
    return s.substr(0, s.find(' '));
  }
};

/// The shared k-way loop over already-opened sources: hands each record's
/// line to `sink` in ascending id order. The heap holds source indices;
/// every comparison reads the id prefix of a reused line buffer, so the
/// loop itself never allocates once the buffers have grown to their
/// steady-state capacity.
Status merge_opened_sources(std::vector<RunSource>& sources,
                            const std::function<void(const std::string&)>& sink) {
  std::vector<std::size_t> heap;
  heap.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].advance()) heap.push_back(i);
  }
  const auto later = [&sources](std::size_t a, std::size_t b) {
    return sources[a].id() > sources[b].id();  // min-heap on id
  };
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const std::size_t i = heap.back();
    sink(sources[i].line);
    if (sources[i].advance()) {
      std::push_heap(heap.begin(), heap.end(), later);
    } else {
      heap.pop_back();
    }
  }
  return Status::Ok();
}

Status merge_runs(const std::vector<const Run*>& runs,
                  const std::function<void(const std::string&)>& sink) {
  std::vector<RunSource> sources(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!sources[i].open(*runs[i])) {
      return Error(ErrorCode::kIoError, "cannot open spill run " + runs[i]->path);
    }
  }
  return merge_opened_sources(sources, sink);
}

}  // namespace

namespace detail {

Status merge_encoded_runs(const std::vector<const std::string*>& runs,
                          const std::function<void(const std::string&)>& sink) {
  std::vector<RunSource> sources(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    sources[i].mem = runs[i];
    sources[i].pos = 0;
  }
  return merge_opened_sources(sources, sink);
}

}  // namespace detail

std::size_t process_vm_rss_kb() { return read_proc_status_kb("VmRSS:"); }
std::size_t process_vm_hwm_kb() { return read_proc_status_kb("VmHWM:"); }

namespace {

/// Realizes one cluster and measures every member: synthesis -> morphology
/// kernel -> result slot, optionally fanned out across the pool (slots are
/// disjoint, so the parallel path is deterministic). Results land unsorted.
void compute_cluster(const SurveyConfig& config, const sim::ClusterSpec& spec,
                     grid::ThreadPool* pool,
                     std::vector<core::GalMorphResult>& results) {
  const sim::Cluster cluster =
      sim::generate_cluster(spec, config.args.cosmology());
  results.resize(cluster.galaxies.size());
  const auto measure_one = [&](std::size_t i) {
    const sim::GalaxyTruth& g = cluster.galaxies[i];
    const image::FitsFile fits = sim::synthesize_galaxy_cutout(
        cluster, g, config.cutout_size, config.render, config.seed,
        config.corruption_rate);
    core::GalMorphArgs args = config.args;
    args.redshift = g.redshift;
    results[i] = core::run_gal_morph(g.id, fits, args);
  };
  if (pool != nullptr) {
    grid::parallel_for(*pool, cluster.galaxies.size(), measure_one);
  } else {
    for (std::size_t i = 0; i < cluster.galaxies.size(); ++i) measure_one(i);
  }
}

Status write_run_file(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Error(ErrorCode::kIoError, "cannot write spill run " + path);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!f) return Error(ErrorCode::kIoError, "short write on spill run " + path);
  return Status::Ok();
}

}  // namespace

Expected<SurveyReport> Survey::run() {
  SurveyReport report;
  report.vm_rss_start_kb = process_vm_rss_kb();
  report.catalog_path = config_.catalog_path;

  const sim::SurveySpec spec{config_.seed, config_.target_galaxies};
  const std::vector<sim::ClusterSpec> specs = sim::survey_cluster_specs(spec);
  report.clusters = specs.size();

  std::unique_ptr<grid::ThreadPool> pool;
  if (config_.compute_threads > 1) {
    pool = std::make_unique<grid::ThreadPool>(config_.compute_threads);
  }

  // Phase 1: one id-sorted run per cluster. Memory high-water here is one
  // cluster's truth records + results + encoded run, not the survey.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<Run> runs;
  runs.reserve(specs.size());
  std::vector<core::GalMorphResult> results;
  std::vector<std::size_t> order;
  std::string encoded;
  std::size_t spill_seq = 0;
  for (const sim::ClusterSpec& cluster_spec : specs) {
    compute_cluster(config_, cluster_spec, pool.get(), results);
    report.galaxies += results.size();
    for (const core::GalMorphResult& r : results) {
      (r.params.valid ? report.valid : report.invalid) += 1;
    }
    order.resize(results.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return results[a].galaxy_id < results[b].galaxy_id;
    });
    encoded.clear();
    for (const std::size_t i : order) detail::encode_run_line(results[i], encoded);
    report.spill_bytes += encoded.size();
    Run run;
    if (!config_.scratch_dir.empty()) {
      run.path = config_.scratch_dir + "/" + config_.table_name + "_" +
                 format("%05zu", spill_seq++) + ".run";
      if (const Status s = write_run_file(run.path, encoded); !s.ok()) {
        return s.error();
      }
    } else {
      run.data = encoded;
    }
    runs.push_back(std::move(run));
  }
  report.spill_runs = runs.size();
  report.compute_seconds = wall_seconds_since(t0);

  // Phase 2: hierarchical k-way merge. Levels deeper than merge_fan_in
  // first collapse batches into intermediate runs; the final level streams
  // straight into the VOTable serializer.
  t0 = std::chrono::steady_clock::now();
  const std::size_t fan_in = std::max<std::size_t>(2, config_.merge_fan_in);
  std::vector<std::string> cleanup;
  for (const Run& r : runs) {
    if (!r.path.empty()) cleanup.push_back(r.path);
  }
  while (runs.size() > fan_in) {
    std::vector<Run> next;
    next.reserve(runs.size() / fan_in + 1);
    for (std::size_t begin = 0; begin < runs.size(); begin += fan_in) {
      const std::size_t end = std::min(runs.size(), begin + fan_in);
      std::vector<const Run*> batch;
      batch.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) batch.push_back(&runs[i]);
      Run merged;
      std::string buffer;
      const Status s = merge_runs(batch, [&buffer](const std::string& line) {
        buffer += line;
        buffer.push_back('\n');
      });
      if (!s.ok()) return s.error();
      report.spill_bytes += buffer.size();
      if (!config_.scratch_dir.empty()) {
        merged.path = config_.scratch_dir + "/" + config_.table_name + "_" +
                      format("%05zu", spill_seq++) + ".run";
        if (const Status w = write_run_file(merged.path, buffer); !w.ok()) {
          return w.error();
        }
        cleanup.push_back(merged.path);
      } else {
        merged.data = std::move(buffer);
      }
      next.push_back(std::move(merged));
    }
    runs = std::move(next);
  }

  // Final merge: decode each record into a reused row and stream it through
  // the incremental VOTable serializer; the buffer drains to the catalog
  // file once it exceeds the flush threshold.
  const votable::Table schema = core::concat_results({}, config_.table_name);
  std::ofstream catalog_file;
  const bool to_file = !config_.catalog_path.empty();
  if (to_file) {
    catalog_file.open(config_.catalog_path, std::ios::binary | std::ios::trunc);
    if (!catalog_file) {
      return Error(ErrorCode::kIoError,
                   "cannot write catalog " + config_.catalog_path);
    }
  }
  std::string& xml = report.catalog_xml;
  constexpr std::size_t kFlushBytes = 1 << 20;
  const auto maybe_flush = [&](bool force) {
    if (!to_file || (!force && xml.size() < kFlushBytes)) return;
    catalog_file.write(xml.data(), static_cast<std::streamsize>(xml.size()));
    xml.clear();
  };
  votable::VotableXmlStream stream;
  stream.begin(schema, xml);
  votable::Row row;
  bool decode_ok = true;
  {
    std::vector<const Run*> finals;
    finals.reserve(runs.size());
    for (const Run& r : runs) finals.push_back(&r);
    const Status s = merge_runs(finals, [&](const std::string& line) {
      if (!detail::decode_run_line(line, row)) {
        decode_ok = false;
        return;
      }
      stream.row(row, xml);
      maybe_flush(false);
    });
    if (!s.ok()) return s.error();
  }
  if (!decode_ok) {
    return Error(ErrorCode::kParseError, "corrupt spill-run record");
  }
  stream.end(xml);
  maybe_flush(true);
  if (to_file) {
    catalog_file.close();
    if (!catalog_file) {
      return Error(ErrorCode::kIoError,
                   "short write on catalog " + config_.catalog_path);
    }
  }
  for (const std::string& path : cleanup) std::remove(path.c_str());
  report.merge_seconds = wall_seconds_since(t0);
  report.vm_rss_end_kb = process_vm_rss_kb();
  report.vm_hwm_kb = process_vm_hwm_kb();
  return report;
}

Expected<SurveyReport> Survey::run_in_memory() {
  SurveyReport report;
  report.vm_rss_start_kb = process_vm_rss_kb();

  const sim::SurveySpec spec{config_.seed, config_.target_galaxies};
  const std::vector<sim::ClusterSpec> specs = sim::survey_cluster_specs(spec);
  report.clusters = specs.size();

  std::unique_ptr<grid::ThreadPool> pool;
  if (config_.compute_threads > 1) {
    pool = std::make_unique<grid::ThreadPool>(config_.compute_threads);
  }

  auto t0 = std::chrono::steady_clock::now();
  std::vector<core::GalMorphResult> all;
  all.reserve(config_.target_galaxies + config_.target_galaxies / 4);
  std::vector<core::GalMorphResult> batch;
  for (const sim::ClusterSpec& cluster_spec : specs) {
    compute_cluster(config_, cluster_spec, pool.get(), batch);
    for (core::GalMorphResult& r : batch) {
      (r.params.valid ? report.valid : report.invalid) += 1;
      all.push_back(std::move(r));
    }
  }
  report.galaxies = all.size();
  std::sort(all.begin(), all.end(),
            [](const core::GalMorphResult& a, const core::GalMorphResult& b) {
              return a.galaxy_id < b.galaxy_id;
            });
  report.compute_seconds = wall_seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const votable::Table catalog = core::concat_results(all, config_.table_name);
  votable::to_votable_xml(catalog, report.catalog_xml);
  report.merge_seconds = wall_seconds_since(t0);
  report.vm_rss_end_kb = process_vm_rss_kb();
  report.vm_hwm_kb = process_vm_hwm_kb();
  return report;
}

}  // namespace nvo::analysis
