// Mirage export + scatter plots (paper §4.4): "We also made use of another
// visualization tool from IBM called Mirage which can create various plots
// of tabular data; this tool allowed us to use scatter plots to look for
// correlations between our morphology parameters and other galaxy
// characteristics ... We were able to support Mirage by creating an XSL
// stylesheet that transformed the VOTable into the tool's native format."
//
// This module is that stylesheet's typed equivalent (VOTable -> Mirage
// whitespace-column format) plus a self-contained ASCII scatter renderer,
// so the correlation plots the paper made in Mirage can be regenerated
// without the (long gone) tool.
#pragma once

#include <string>
#include <vector>

#include "common/expected.hpp"
#include "votable/table.hpp"

namespace nvo::analysis {

/// Serializes a table into the Mirage native format: a `format` header line
/// naming the variables, then one whitespace-separated row per record.
/// String columns are emitted verbatim (Mirage treats them as categorical);
/// null cells become the sentinel "-9999".
std::string to_mirage(const votable::Table& table);

/// Parses the Mirage format back (column names from the format line; all
/// values typed as strings/doubles by content) — used for round-trip tests
/// and for reading Mirage-side selections back in.
Expected<votable::Table> from_mirage(const std::string& text);

/// ASCII scatter plot of y against x, with optional per-point classes
/// rendered as distinct glyphs ('o', 'x', '+', '*'). Null-safe: rows where
/// either coordinate is missing are skipped.
struct ScatterOptions {
  int width = 64;
  int height = 20;
  std::string x_label = "x";
  std::string y_label = "y";
};
std::string scatter_ascii(const std::vector<double>& x, const std::vector<double>& y,
                          const std::vector<int>& point_class,
                          const ScatterOptions& options = {});

/// Convenience: scatter two numeric columns of a table, classed by a bool
/// column ("valid"-style) when given.
Expected<std::string> scatter_columns(const votable::Table& table,
                                      const std::string& x_column,
                                      const std::string& y_column,
                                      const std::string& class_column = "",
                                      const ScatterOptions& options = {});

}  // namespace nvo::analysis
