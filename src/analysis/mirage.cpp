#include "analysis/mirage.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace nvo::analysis {

std::string to_mirage(const votable::Table& table) {
  std::string out = "format";
  for (const votable::Field& f : table.fields()) {
    // Mirage variable names are whitespace-free tokens.
    out += " " + replace_all(f.name, " ", "_");
  }
  out += "\n";
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> cells;
    for (const votable::Value& v : table.row(r)) {
      if (v.is_null()) {
        cells.push_back("-9999");
      } else {
        std::string text = v.to_text();
        cells.push_back(text.empty() ? "-9999" : replace_all(text, " ", "_"));
      }
    }
    out += join(cells, " ") + "\n";
  }
  return out;
}

Expected<votable::Table> from_mirage(const std::string& text) {
  const std::vector<std::string> lines = split(text, '\n');
  std::size_t line_index = 0;
  while (line_index < lines.size() && trim(lines[line_index]).empty()) ++line_index;
  if (line_index >= lines.size()) {
    return Error(ErrorCode::kParseError, "empty Mirage document");
  }
  const std::vector<std::string> header = split_ws(lines[line_index]);
  if (header.empty() || header[0] != "format") {
    return Error(ErrorCode::kParseError, "Mirage document lacks a format line");
  }
  std::vector<votable::Field> fields;
  for (std::size_t i = 1; i < header.size(); ++i) {
    // Column types are inferred from content below; start as string.
    fields.push_back({header[i], votable::DataType::kString, "", "", ""});
  }
  if (fields.empty()) {
    return Error(ErrorCode::kParseError, "Mirage format line names no variables");
  }

  // First pass: collect rows, track numeric-ness per column.
  std::vector<std::vector<std::string>> raw_rows;
  std::vector<bool> numeric(fields.size(), true);
  for (std::size_t l = line_index + 1; l < lines.size(); ++l) {
    const std::vector<std::string> cells = split_ws(lines[l]);
    if (cells.empty()) continue;
    if (cells.size() != fields.size()) {
      return Error(ErrorCode::kParseError,
                   format("row %zu has %zu cells, expected %zu", l, cells.size(),
                          fields.size()));
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c] != "-9999" && !parse_double(cells[c])) numeric[c] = false;
    }
    raw_rows.push_back(cells);
  }
  for (std::size_t c = 0; c < fields.size(); ++c) {
    if (numeric[c]) fields[c].datatype = votable::DataType::kDouble;
  }

  votable::Table out(fields);
  out.name = "mirage_import";
  for (const auto& cells : raw_rows) {
    votable::Row row;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c] == "-9999") {
        row.emplace_back();
      } else if (fields[c].datatype == votable::DataType::kDouble) {
        row.push_back(votable::Value::of_double(parse_double(cells[c]).value()));
      } else {
        row.push_back(votable::Value::of_string(cells[c]));
      }
    }
    (void)out.append_row(std::move(row));
  }
  return out;
}

std::string scatter_ascii(const std::vector<double>& x, const std::vector<double>& y,
                          const std::vector<int>& point_class,
                          const ScatterOptions& options) {
  const char glyphs[] = {'o', 'x', '+', '*'};
  if (x.empty() || x.size() != y.size()) return "(no data)\n";
  const double x_min = *std::min_element(x.begin(), x.end());
  const double x_max = *std::max_element(x.begin(), x.end());
  const double y_min = *std::min_element(y.begin(), y.end());
  const double y_max = *std::max_element(y.begin(), y.end());
  const double x_span = x_max > x_min ? x_max - x_min : 1.0;
  const double y_span = y_max > y_min ? y_max - y_min : 1.0;

  std::vector<std::string> canvas(
      static_cast<std::size_t>(options.height),
      std::string(static_cast<std::size_t>(options.width), ' '));
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) continue;
    const int cx = static_cast<int>((x[i] - x_min) / x_span * (options.width - 1));
    const int cy = static_cast<int>((y[i] - y_min) / y_span * (options.height - 1));
    const int cls =
        i < point_class.size() ? std::abs(point_class[i]) % 4 : 0;
    // Row 0 of the canvas is the top: invert y.
    canvas[static_cast<std::size_t>(options.height - 1 - cy)]
          [static_cast<std::size_t>(cx)] = glyphs[cls];
  }

  std::string out = format("%s vs %s  [y: %.3g..%.3g]\n", options.y_label.c_str(),
                           options.x_label.c_str(), y_min, y_max);
  for (const std::string& row : canvas) out += "|" + row + "|\n";
  out += format("x: %.3g..%.3g\n", x_min, x_max);
  return out;
}

Expected<std::string> scatter_columns(const votable::Table& table,
                                      const std::string& x_column,
                                      const std::string& y_column,
                                      const std::string& class_column,
                                      const ScatterOptions& options) {
  if (!table.column_index(x_column)) {
    return Error(ErrorCode::kNotFound, "column " + x_column);
  }
  if (!table.column_index(y_column)) {
    return Error(ErrorCode::kNotFound, "column " + y_column);
  }
  std::vector<double> x, y;
  std::vector<int> cls;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const auto xv = table.cell(r, x_column).as_number();
    const auto yv = table.cell(r, y_column).as_number();
    if (!xv || !yv) continue;
    x.push_back(*xv);
    y.push_back(*yv);
    int c = 0;
    if (!class_column.empty()) {
      const votable::Value& cv = table.cell(r, class_column);
      if (const auto b = cv.as_bool()) {
        c = *b ? 0 : 1;
      } else if (const auto n = cv.as_number()) {
        c = static_cast<int>(*n);
      }
    }
    cls.push_back(c);
  }
  ScatterOptions opts = options;
  if (opts.x_label == "x") opts.x_label = x_column;
  if (opts.y_label == "y") opts.y_label = y_column;
  return scatter_ascii(x, y, cls, opts);
}

}  // namespace nvo::analysis
