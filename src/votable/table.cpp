#include "votable/table.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/strings.hpp"

namespace nvo::votable {

const Value Table::kNull{};

const char* to_votable_datatype(DataType t) {
  switch (t) {
    case DataType::kDouble:
      return "double";
    case DataType::kLong:
      return "long";
    case DataType::kString:
      return "char";
    case DataType::kBool:
      return "boolean";
  }
  return "char";
}

std::optional<DataType> datatype_from_votable(const std::string& s) {
  if (s == "double" || s == "float") return DataType::kDouble;
  if (s == "long" || s == "int" || s == "short") return DataType::kLong;
  if (s == "char" || s == "unicodeChar") return DataType::kString;
  if (s == "boolean") return DataType::kBool;
  return std::nullopt;
}

std::optional<double> Value::as_double() const {
  if (!payload_) return std::nullopt;
  if (const double* v = std::get_if<double>(&*payload_)) return *v;
  return std::nullopt;
}

std::optional<long long> Value::as_long() const {
  if (!payload_) return std::nullopt;
  if (const long long* v = std::get_if<long long>(&*payload_)) return *v;
  return std::nullopt;
}

std::optional<std::string> Value::as_string() const {
  if (!payload_) return std::nullopt;
  if (const std::string* v = std::get_if<std::string>(&*payload_)) return *v;
  return std::nullopt;
}

std::optional<bool> Value::as_bool() const {
  if (!payload_) return std::nullopt;
  if (const bool* v = std::get_if<bool>(&*payload_)) return *v;
  return std::nullopt;
}

const std::string* Value::string_ref() const {
  if (!payload_) return nullptr;
  return std::get_if<std::string>(&*payload_);
}

std::optional<double> Value::as_number() const {
  if (!payload_) return std::nullopt;
  if (const double* v = std::get_if<double>(&*payload_)) return *v;
  if (const long long* v = std::get_if<long long>(&*payload_)) {
    return static_cast<double>(*v);
  }
  return std::nullopt;
}

std::string Value::to_text() const {
  std::string out;
  append_text_to(out);
  return out;
}

void Value::append_text_to(std::string& out) const {
  if (!payload_) return;
  if (const double* v = std::get_if<double>(&*payload_)) {
    if (std::isnan(*v)) return;
    char buf[32];
    const int n = std::snprintf(buf, sizeof(buf), "%.10g", *v);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  if (const long long* v = std::get_if<long long>(&*payload_)) {
    char buf[24];
    const int n = std::snprintf(buf, sizeof(buf), "%lld", *v);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  if (const std::string* v = std::get_if<std::string>(&*payload_)) {
    out.append(*v);
    return;
  }
  if (const bool* v = std::get_if<bool>(&*payload_)) {
    out.append(*v ? "true" : "false");
  }
}

Expected<Value> Value::parse(const std::string& text, DataType type) {
  Value v;
  const Status s = v.assign_parse(text, type);
  if (!s.ok()) return s.error();
  return v;
}

namespace {

/// Case-insensitive match against a lowercase literal, without allocating.
bool iequals_lower(std::string_view s, std::string_view lower_literal) {
  if (s.size() != lower_literal.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != lower_literal[i]) return false;
  }
  return true;
}

}  // namespace

Status Value::assign_parse(std::string_view text, DataType type) {
  const std::string_view t = trim(text);
  if (t.empty()) {
    payload_.reset();
    return Status::Ok();
  }
  switch (type) {
    case DataType::kDouble: {
      double v = 0.0;
      const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
      if (ec != std::errc() || ptr != t.data() + t.size()) {
        // from_chars rejects forms strtod accepts (leading '+', "INF" case
        // variants); fall back for those rather than losing them.
        const auto slow = parse_double(t);
        if (!slow) {
          return Error(ErrorCode::kParseError, "bad double: '" + std::string(t) + "'");
        }
        v = *slow;
      }
      payload_ = Payload(v);
      return Status::Ok();
    }
    case DataType::kLong: {
      long long v = 0;
      const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
      if (ec != std::errc() || ptr != t.data() + t.size()) {
        const auto slow = parse_int(t);
        if (!slow) {
          return Error(ErrorCode::kParseError, "bad long: '" + std::string(t) + "'");
        }
        v = *slow;
      }
      payload_ = Payload(v);
      return Status::Ok();
    }
    case DataType::kString: {
      if (payload_.has_value()) {
        if (std::string* s = std::get_if<std::string>(&*payload_)) {
          s->assign(t.data(), t.size());  // reuse capacity
          return Status::Ok();
        }
      }
      payload_.emplace(std::in_place_type<std::string>, t.data(), t.size());
      return Status::Ok();
    }
    case DataType::kBool: {
      if (iequals_lower(t, "true") || iequals_lower(t, "t") || t == "1") {
        payload_ = Payload(true);
        return Status::Ok();
      }
      if (iequals_lower(t, "false") || iequals_lower(t, "f") || t == "0") {
        payload_ = Payload(false);
        return Status::Ok();
      }
      return Error(ErrorCode::kParseError, "bad boolean: '" + std::string(t) + "'");
    }
  }
  return Error(ErrorCode::kParseError, "unknown datatype");
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  return *payload_ == *other.payload_;
}

std::optional<std::size_t> Table::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

void Table::add_column(Field field) {
  fields_.push_back(std::move(field));
  for (auto& r : rows_) r.emplace_back();
}

Status Table::append_row(Row row) {
  if (row.size() != fields_.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 format("row arity %zu != %zu columns", row.size(), fields_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

void Table::resize_rows(std::size_t n) {
  const std::size_t old = rows_.size();
  rows_.resize(n);
  for (std::size_t i = old; i < rows_.size(); ++i) rows_[i].resize(fields_.size());
}

const Value& Table::cell(std::size_t row_index, const std::string& column) const {
  const auto idx = column_index(column);
  if (!idx || row_index >= rows_.size()) return kNull;
  return rows_[row_index][*idx];
}

void Table::set_cell(std::size_t row_index, const std::string& column, Value v) {
  const auto idx = column_index(column);
  if (!idx || row_index >= rows_.size()) return;
  rows_[row_index][*idx] = std::move(v);
}

}  // namespace nvo::votable
