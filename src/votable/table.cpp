#include "votable/table.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace nvo::votable {

const Value Table::kNull{};

const char* to_votable_datatype(DataType t) {
  switch (t) {
    case DataType::kDouble:
      return "double";
    case DataType::kLong:
      return "long";
    case DataType::kString:
      return "char";
    case DataType::kBool:
      return "boolean";
  }
  return "char";
}

std::optional<DataType> datatype_from_votable(const std::string& s) {
  if (s == "double" || s == "float") return DataType::kDouble;
  if (s == "long" || s == "int" || s == "short") return DataType::kLong;
  if (s == "char" || s == "unicodeChar") return DataType::kString;
  if (s == "boolean") return DataType::kBool;
  return std::nullopt;
}

std::optional<double> Value::as_double() const {
  if (!payload_) return std::nullopt;
  if (const double* v = std::get_if<double>(&*payload_)) return *v;
  return std::nullopt;
}

std::optional<long long> Value::as_long() const {
  if (!payload_) return std::nullopt;
  if (const long long* v = std::get_if<long long>(&*payload_)) return *v;
  return std::nullopt;
}

std::optional<std::string> Value::as_string() const {
  if (!payload_) return std::nullopt;
  if (const std::string* v = std::get_if<std::string>(&*payload_)) return *v;
  return std::nullopt;
}

std::optional<bool> Value::as_bool() const {
  if (!payload_) return std::nullopt;
  if (const bool* v = std::get_if<bool>(&*payload_)) return *v;
  return std::nullopt;
}

std::optional<double> Value::as_number() const {
  if (!payload_) return std::nullopt;
  if (const double* v = std::get_if<double>(&*payload_)) return *v;
  if (const long long* v = std::get_if<long long>(&*payload_)) {
    return static_cast<double>(*v);
  }
  return std::nullopt;
}

std::string Value::to_text() const {
  if (!payload_) return "";
  if (const double* v = std::get_if<double>(&*payload_)) {
    if (std::isnan(*v)) return "";
    return format("%.10g", *v);
  }
  if (const long long* v = std::get_if<long long>(&*payload_)) {
    return format("%lld", *v);
  }
  if (const std::string* v = std::get_if<std::string>(&*payload_)) return *v;
  if (const bool* v = std::get_if<bool>(&*payload_)) return *v ? "true" : "false";
  return "";
}

Expected<Value> Value::parse(const std::string& text, DataType type) {
  const std::string_view t = trim(text);
  if (t.empty()) return Value();  // null
  switch (type) {
    case DataType::kDouble: {
      const auto v = parse_double(t);
      if (!v) return Error(ErrorCode::kParseError, "bad double: '" + text + "'");
      return Value::of_double(*v);
    }
    case DataType::kLong: {
      const auto v = parse_int(t);
      if (!v) return Error(ErrorCode::kParseError, "bad long: '" + text + "'");
      return Value::of_long(*v);
    }
    case DataType::kString:
      return Value::of_string(std::string(t));
    case DataType::kBool: {
      const std::string lower = to_lower(t);
      if (lower == "true" || lower == "t" || lower == "1") return Value::of_bool(true);
      if (lower == "false" || lower == "f" || lower == "0") return Value::of_bool(false);
      return Error(ErrorCode::kParseError, "bad boolean: '" + text + "'");
    }
  }
  return Error(ErrorCode::kParseError, "unknown datatype");
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  return *payload_ == *other.payload_;
}

std::optional<std::size_t> Table::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

void Table::add_column(Field field) {
  fields_.push_back(std::move(field));
  for (auto& r : rows_) r.emplace_back();
}

Status Table::append_row(Row row) {
  if (row.size() != fields_.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 format("row arity %zu != %zu columns", row.size(), fields_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

const Value& Table::cell(std::size_t row_index, const std::string& column) const {
  const auto idx = column_index(column);
  if (!idx || row_index >= rows_.size()) return kNull;
  return rows_[row_index][*idx];
}

void Table::set_cell(std::size_t row_index, const std::string& column, Value v) {
  const auto idx = column_index(column);
  if (!idx || row_index >= rows_.size()) return;
  rows_[row_index][*idx] = std::move(v);
}

}  // namespace nvo::votable
