#include "votable/xml.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace nvo::votable {

std::optional<std::string> XmlNode::attr(const std::string& key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return std::nullopt;
}

void XmlNode::set_attr(const std::string& key, std::string value) {
  for (auto& [k, v] : attributes) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes.emplace_back(key, std::move(value));
}

const XmlNode* XmlNode::child(const std::string& child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(const std::string& child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

XmlNode& XmlNode::append_child(std::string child_name) {
  children.push_back(std::make_unique<XmlNode>());
  children.back()->name = std::move(child_name);
  return *children.back();
}

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  xml_escape_append(s, out);
  return out;
}

void xml_escape_append(std::string_view s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
}

void xml_unescape_append(std::string_view s, std::string& out) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    const std::size_t semi = s.find(';', i);
    if (semi == std::string_view::npos) {
      out += s[i];
      continue;
    }
    const std::string_view entity = s.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      }
    } else {
      // Unknown entity: keep verbatim.
      out += '&';
      out += entity;
      out += ';';
    }
    i = semi;
  }
}

namespace {

std::string xml_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  xml_unescape_append(s, out);
  return out;
}

void serialize_node(const XmlNode& node, std::string& out, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent;
  out += '<';
  out += node.name;
  for (const auto& [k, v] : node.attributes) {
    out += ' ';
    out += k;
    out += "=\"";
    out += xml_escape(v);
    out += '"';
  }
  if (node.children.empty() && node.text.empty()) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (node.children.empty()) {
    out += xml_escape(node.text);
    out += "</";
    out += node.name;
    out += ">\n";
    return;
  }
  out += '\n';
  for (const auto& c : node.children) serialize_node(*c, out, depth + 1);
  out += indent;
  out += "</";
  out += node.name;
  out += ">\n";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Expected<std::unique_ptr<XmlNode>> parse() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_misc();
    if (pos_ != s_.size()) {
      return Error(ErrorCode::kParseError,
                   format("trailing content at offset %zu", pos_));
    }
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool consume(std::string_view token) {
    if (s_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void skip_comment_or_pi() {
    for (;;) {
      skip_ws();
      if (consume("<!--")) {
        const std::size_t end = s_.find("-->", pos_);
        pos_ = end == std::string::npos ? s_.size() : end + 3;
      } else if (consume("<?")) {
        const std::size_t end = s_.find("?>", pos_);
        pos_ = end == std::string::npos ? s_.size() : end + 2;
      } else if (consume("<!DOCTYPE")) {
        const std::size_t end = s_.find('>', pos_);
        pos_ = end == std::string::npos ? s_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  void skip_prolog() { skip_comment_or_pi(); }
  void skip_misc() { skip_comment_or_pi(); }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return s_.substr(start, pos_ - start);
  }

  Expected<std::unique_ptr<XmlNode>> parse_element() {
    skip_ws();
    if (!consume("<")) {
      return Error(ErrorCode::kParseError, format("expected '<' at offset %zu", pos_));
    }
    auto node = std::make_unique<XmlNode>();
    node->name = parse_name();
    if (node->name.empty()) {
      return Error(ErrorCode::kParseError, format("empty element name at %zu", pos_));
    }
    // Attributes.
    for (;;) {
      skip_ws();
      if (consume("/>")) return node;
      if (consume(">")) break;
      const std::string key = parse_name();
      if (key.empty()) {
        return Error(ErrorCode::kParseError, format("bad attribute at %zu", pos_));
      }
      skip_ws();
      if (!consume("=")) {
        return Error(ErrorCode::kParseError, format("expected '=' at %zu", pos_));
      }
      skip_ws();
      if (pos_ >= s_.size() || (s_[pos_] != '"' && s_[pos_] != '\'')) {
        return Error(ErrorCode::kParseError, format("expected quote at %zu", pos_));
      }
      const char quote = s_[pos_++];
      const std::size_t end = s_.find(quote, pos_);
      if (end == std::string::npos) {
        return Error(ErrorCode::kParseError, "unterminated attribute value");
      }
      node->attributes.emplace_back(key, xml_unescape(s_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }
    // Content.
    for (;;) {
      if (pos_ >= s_.size()) {
        return Error(ErrorCode::kParseError, "unexpected end inside <" + node->name + ">");
      }
      if (consume("<!--")) {
        const std::size_t end = s_.find("-->", pos_);
        if (end == std::string::npos) {
          return Error(ErrorCode::kParseError, "unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (consume("<![CDATA[")) {
        const std::size_t end = s_.find("]]>", pos_);
        if (end == std::string::npos) {
          return Error(ErrorCode::kParseError, "unterminated CDATA");
        }
        node->text += s_.substr(pos_, end - pos_);
        pos_ = end + 3;
        continue;
      }
      if (s_.compare(pos_, 2, "</") == 0) {
        pos_ += 2;
        const std::string closing = parse_name();
        skip_ws();
        if (!consume(">")) {
          return Error(ErrorCode::kParseError, "malformed closing tag");
        }
        if (closing != node->name) {
          return Error(ErrorCode::kParseError,
                       "mismatched </" + closing + "> for <" + node->name + ">");
        }
        return node;
      }
      if (s_[pos_] == '<') {
        auto child = parse_element();
        if (!child.ok()) return child;
        node->children.push_back(std::move(child.value()));
        continue;
      }
      // Character data until the next '<'.
      const std::size_t end = s_.find('<', pos_);
      if (end == std::string::npos) {
        return Error(ErrorCode::kParseError, "unexpected end in text content");
      }
      node->text += xml_unescape(s_.substr(pos_, end - pos_));
      pos_ = end;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string xml_serialize(const XmlNode& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  serialize_node(root, out, 0);
  return out;
}

Expected<std::unique_ptr<XmlNode>> xml_parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace nvo::votable
