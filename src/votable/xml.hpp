// Small XML document model + parser, sufficient for VOTable (the paper's
// XML table interchange schema) and for the XSLT-like document transforms of
// §4.3. Supports elements, attributes (order-preserving), character data,
// comments, and XML declarations. No namespaces-as-objects: prefixed names
// are kept verbatim, which is how the 2003-era VOTable tooling treated them.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"

namespace nvo::votable {

/// One XML element. Text content is modeled as the concatenation of all
/// character data directly inside the element (sufficient for TABLEDATA
/// cells, which never mix text and elements).
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;
  std::vector<std::unique_ptr<XmlNode>> children;

  /// Attribute lookup; nullopt when absent.
  std::optional<std::string> attr(const std::string& key) const;
  void set_attr(const std::string& key, std::string value);

  /// First child with the given element name, or nullptr.
  const XmlNode* child(const std::string& child_name) const;

  /// All children with the given element name.
  std::vector<const XmlNode*> children_named(const std::string& child_name) const;

  /// Appends a new child element and returns a reference to it.
  XmlNode& append_child(std::string child_name);
};

/// Escapes &<>"' for attribute/text contexts.
std::string xml_escape(const std::string& s);

/// Append-style escape/unescape used by the single-pass VOTable codec; they
/// avoid temporary strings so hot paths can reuse one output buffer.
void xml_escape_append(std::string_view s, std::string& out);
void xml_unescape_append(std::string_view s, std::string& out);

/// Serializes with 2-space indentation and an XML declaration.
std::string xml_serialize(const XmlNode& root);

/// Parses a document; returns the root element.
Expected<std::unique_ptr<XmlNode>> xml_parse(const std::string& text);

}  // namespace nvo::votable
