// VOTable serialization: Table <-> the VOTABLE XML dialect the paper's
// portal, web service, and visualization tools exchanged ("by virtue of
// being XML, VOTable is readily created and manipulated with off-the-shelf
// tools"). We emit the 1.1-style layout the NVO prototypes used:
//
//   <VOTABLE version="1.1">
//     <RESOURCE>
//       <TABLE name="...">
//         <DESCRIPTION>...</DESCRIPTION>
//         <FIELD name="ra" datatype="double" unit="deg" ucd="pos.eq.ra"/>
//         ...
//         <DATA><TABLEDATA><TR><TD>...</TD>...</TR>...</TABLEDATA></DATA>
//       </TABLE>
//     </RESOURCE>
//   </VOTABLE>
#pragma once

#include <string>

#include "common/expected.hpp"
#include "votable/table.hpp"
#include "votable/xml.hpp"

namespace nvo::votable {

/// Serializes a Table to VOTable XML text.
std::string to_votable_xml(const Table& table);

/// Single-pass, reserve-ahead serializer into a caller-owned buffer
/// (cleared first). Output is byte-identical to the tree-based path; a
/// reused buffer makes steady-state serialization allocation-free.
void to_votable_xml(const Table& table, std::string& out);

/// Builds the XML document tree without flattening to text (useful for the
/// portal transforms, which walk the tree).
std::unique_ptr<XmlNode> to_votable_tree(const Table& table);

/// Incremental VOTable serializer: begin(schema) + N x row(...) + end()
/// append exactly the bytes to_votable_xml would produce for the same
/// schema and row sequence (to_votable_xml is itself implemented on top of
/// this class), but one row at a time — a survey-scale catalog can stream
/// through a small reused buffer instead of ever existing as a Table.
/// The caller may drain the buffer between calls (e.g. flush to a file);
/// the writer only ever appends.
class VotableXmlStream {
 public:
  /// Document prologue from the schema (fields + name/description; any rows
  /// in `schema` are ignored). Emits everything up to the TABLEDATA
  /// element, which is deferred to row()/end() so an empty table
  /// self-closes exactly as the batch serializer does.
  void begin(const Table& schema, std::string& out);
  /// One TR element. Cells render through the same Value text path as the
  /// batch serializer (null/NaN/empty cells self-close).
  void row(const Row& row, std::string& out);
  /// TABLEDATA closer + document epilogue.
  void end(std::string& out);

 private:
  bool any_rows_ = false;
};

/// Parses the first TABLE of the first RESOURCE of a VOTable document.
Expected<Table> from_votable_xml(const std::string& xml_text);

/// Parses from an already-built document tree.
Expected<Table> from_votable_tree(const XmlNode& root);

/// Reusable single-pass VOTable parser. `read` refills `out` in place: when
/// the document's schema matches the table's current fields, row and cell
/// storage is recycled, so re-parsing same-shaped documents performs zero
/// heap allocations. Documents that deviate from the canonical layout our
/// serializer emits (comments, CDATA, foreign elements) fall back to the
/// tree parser transparently.
class VotableReader {
 public:
  Status read(const std::string& xml_text, Table& out);

 private:
  enum class FastResult { kOk, kFallback, kError };
  FastResult try_fast(Table& out);
  FastResult parse_rows(Table& out);
  bool match(std::string_view token);
  void skip_ws();
  int parse_attr(std::string_view& key, std::string_view& raw_value);
  bool read_text_until_lt(std::string_view& raw);
  std::string_view unescaped(std::string_view raw);
  static void assign_unescaped(std::string_view raw, std::string& target);

  std::string_view s_;
  std::size_t pos_ = 0;
  Error error_{ErrorCode::kParseError, ""};
  std::string scratch_;          ///< entity-unescape buffer, capacity reused
  std::vector<Field> fields_;    ///< parsed schema, storage reused
};

/// File-system convenience wrappers.
Status write_votable_file(const std::string& path, const Table& table);
Expected<Table> read_votable_file(const std::string& path);

}  // namespace nvo::votable
