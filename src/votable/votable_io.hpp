// VOTable serialization: Table <-> the VOTABLE XML dialect the paper's
// portal, web service, and visualization tools exchanged ("by virtue of
// being XML, VOTable is readily created and manipulated with off-the-shelf
// tools"). We emit the 1.1-style layout the NVO prototypes used:
//
//   <VOTABLE version="1.1">
//     <RESOURCE>
//       <TABLE name="...">
//         <DESCRIPTION>...</DESCRIPTION>
//         <FIELD name="ra" datatype="double" unit="deg" ucd="pos.eq.ra"/>
//         ...
//         <DATA><TABLEDATA><TR><TD>...</TD>...</TR>...</TABLEDATA></DATA>
//       </TABLE>
//     </RESOURCE>
//   </VOTABLE>
#pragma once

#include <string>

#include "common/expected.hpp"
#include "votable/table.hpp"
#include "votable/xml.hpp"

namespace nvo::votable {

/// Serializes a Table to VOTable XML text.
std::string to_votable_xml(const Table& table);

/// Builds the XML document tree without flattening to text (useful for the
/// portal transforms, which walk the tree).
std::unique_ptr<XmlNode> to_votable_tree(const Table& table);

/// Parses the first TABLE of the first RESOURCE of a VOTable document.
Expected<Table> from_votable_xml(const std::string& xml_text);

/// Parses from an already-built document tree.
Expected<Table> from_votable_tree(const XmlNode& root);

/// File-system convenience wrappers.
Status write_votable_file(const std::string& path, const Table& table);
Expected<Table> read_votable_file(const std::string& path);

}  // namespace nvo::votable
