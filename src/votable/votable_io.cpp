#include "votable/votable_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace nvo::votable {

std::unique_ptr<XmlNode> to_votable_tree(const Table& table) {
  auto root = std::make_unique<XmlNode>();
  root->name = "VOTABLE";
  root->set_attr("version", "1.1");
  XmlNode& resource = root->append_child("RESOURCE");
  XmlNode& tbl = resource.append_child("TABLE");
  if (!table.name.empty()) tbl.set_attr("name", table.name);
  if (!table.description.empty()) {
    tbl.append_child("DESCRIPTION").text = table.description;
  }
  for (const Field& f : table.fields()) {
    XmlNode& field = tbl.append_child("FIELD");
    field.set_attr("name", f.name);
    field.set_attr("datatype", to_votable_datatype(f.datatype));
    if (f.datatype == DataType::kString) field.set_attr("arraysize", "*");
    if (!f.unit.empty()) field.set_attr("unit", f.unit);
    if (!f.ucd.empty()) field.set_attr("ucd", f.ucd);
    if (!f.description.empty()) {
      field.append_child("DESCRIPTION").text = f.description;
    }
  }
  XmlNode& tabledata = tbl.append_child("DATA").append_child("TABLEDATA");
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    XmlNode& tr = tabledata.append_child("TR");
    for (const Value& cell : table.row(r)) {
      tr.append_child("TD").text = cell.to_text();
    }
  }
  return root;
}

std::string to_votable_xml(const Table& table) {
  std::string out;
  to_votable_xml(table, out);
  return out;
}

void to_votable_xml(const Table& table, std::string& out) {
  out.clear();
  // Reserve ahead: fixed scaffolding + per-field metadata + per-cell markup.
  // String cells can exceed the per-cell guess; amortized growth covers the
  // tail, and a reused buffer stabilizes after the first call.
  std::size_t estimate = 192;
  for (const Field& f : table.fields()) {
    estimate += 64 + f.name.size() + f.unit.size() + f.ucd.size() +
                2 * f.description.size();
  }
  estimate += table.num_rows() * (30 + table.num_columns() * 44);
  if (out.capacity() < estimate) out.reserve(estimate);

  VotableXmlStream stream;
  stream.begin(table, out);
  for (std::size_t r = 0; r < table.num_rows(); ++r) stream.row(table.row(r), out);
  stream.end(out);
}

void VotableXmlStream::begin(const Table& table, std::string& out) {
  any_rows_ = false;
  out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<VOTABLE version=\"1.1\">\n  <RESOURCE>\n    <TABLE";
  if (!table.name.empty()) {
    out += " name=\"";
    xml_escape_append(table.name, out);
    out += '"';
  }
  out += ">\n";
  if (!table.description.empty()) {
    out += "      <DESCRIPTION>";
    xml_escape_append(table.description, out);
    out += "</DESCRIPTION>\n";
  }
  for (const Field& f : table.fields()) {
    out += "      <FIELD name=\"";
    xml_escape_append(f.name, out);
    out += "\" datatype=\"";
    out += to_votable_datatype(f.datatype);
    out += '"';
    if (f.datatype == DataType::kString) out += " arraysize=\"*\"";
    if (!f.unit.empty()) {
      out += " unit=\"";
      xml_escape_append(f.unit, out);
      out += '"';
    }
    if (!f.ucd.empty()) {
      out += " ucd=\"";
      xml_escape_append(f.ucd, out);
      out += '"';
    }
    if (f.description.empty()) {
      out += "/>\n";
    } else {
      out += ">\n        <DESCRIPTION>";
      xml_escape_append(f.description, out);
      out += "</DESCRIPTION>\n      </FIELD>\n";
    }
  }
  out += "      <DATA>\n";
}

void VotableXmlStream::row(const Row& row, std::string& out) {
  if (!any_rows_) {
    any_rows_ = true;
    out += "        <TABLEDATA>\n";
  }
  if (row.empty()) {
    out += "          <TR/>\n";
    return;
  }
  out += "          <TR>\n";
  for (const Value& cell : row) {
    out += "            <TD>";
    const std::size_t text_start = out.size();
    if (const std::string* s = cell.string_ref()) {
      xml_escape_append(*s, out);
    } else {
      cell.append_text_to(out);  // numeric/bool text never needs escaping
    }
    if (out.size() == text_start) {
      // Empty text (null cell, NaN, empty string): the tree serializer
      // self-closes these.
      out.resize(text_start - 4);
      out += "<TD/>\n";
    } else {
      out += "</TD>\n";
    }
  }
  out += "          </TR>\n";
}

void VotableXmlStream::end(std::string& out) {
  out += any_rows_ ? "        </TABLEDATA>\n" : "        <TABLEDATA/>\n";
  out += "      </DATA>\n    </TABLE>\n  </RESOURCE>\n</VOTABLE>\n";
}

Expected<Table> from_votable_tree(const XmlNode& root) {
  if (root.name != "VOTABLE") {
    return Error(ErrorCode::kParseError, "root element is not VOTABLE");
  }
  const XmlNode* resource = root.child("RESOURCE");
  if (!resource) return Error(ErrorCode::kParseError, "no RESOURCE element");
  const XmlNode* tbl = resource->child("TABLE");
  if (!tbl) return Error(ErrorCode::kParseError, "no TABLE element");

  std::vector<Field> fields;
  for (const XmlNode* field_node : tbl->children_named("FIELD")) {
    Field f;
    f.name = field_node->attr("name").value_or("");
    const std::string dt = field_node->attr("datatype").value_or("char");
    const auto parsed = datatype_from_votable(dt);
    if (!parsed) {
      return Error(ErrorCode::kParseError, "unsupported FIELD datatype '" + dt + "'");
    }
    f.datatype = *parsed;
    f.unit = field_node->attr("unit").value_or("");
    f.ucd = field_node->attr("ucd").value_or("");
    if (const XmlNode* d = field_node->child("DESCRIPTION")) f.description = d->text;
    fields.push_back(std::move(f));
  }

  Table out(std::move(fields));
  out.name = tbl->attr("name").value_or("");
  if (const XmlNode* d = tbl->child("DESCRIPTION")) out.description = d->text;

  const XmlNode* data = tbl->child("DATA");
  if (!data) return out;  // header-only table is legal
  const XmlNode* tabledata = data->child("TABLEDATA");
  if (!tabledata) return out;

  for (const XmlNode* tr : tabledata->children_named("TR")) {
    const auto tds = tr->children_named("TD");
    if (tds.size() != out.num_columns()) {
      return Error(ErrorCode::kParseError,
                   format("TR has %zu TDs, expected %zu", tds.size(), out.num_columns()));
    }
    Row row;
    row.reserve(tds.size());
    for (std::size_t c = 0; c < tds.size(); ++c) {
      auto v = Value::parse(tds[c]->text, out.fields()[c].datatype);
      if (!v.ok()) return v.error();
      row.push_back(std::move(v.value()));
    }
    const Status s = out.append_row(std::move(row));
    if (!s.ok()) return s.error();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Single-pass parser. Scans the canonical layout produced by
// to_votable_xml directly into a Table, recycling the destination's field,
// row, and cell storage. Anything structurally unexpected falls back to the
// tree parser, which accepts the full dialect.
// ---------------------------------------------------------------------------

void VotableReader::skip_ws() {
  while (pos_ < s_.size() &&
         std::isspace(static_cast<unsigned char>(s_[pos_]))) {
    ++pos_;
  }
}

bool VotableReader::match(std::string_view token) {
  if (s_.compare(pos_, token.size(), token) == 0) {
    pos_ += token.size();
    return true;
  }
  return false;
}

/// Parses one `key="value"` attribute. Returns 1 on success, 0 when the
/// element ends with '>', 2 when it self-closes with '/>', -1 on anything
/// unexpected. `raw_value` is the escaped text between the quotes.
int VotableReader::parse_attr(std::string_view& key, std::string_view& raw_value) {
  skip_ws();
  if (match("/>")) return 2;
  if (match(">")) return 0;
  const std::size_t key_start = pos_;
  while (pos_ < s_.size()) {
    const char c = s_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == ':' || c == '.') {
      ++pos_;
    } else {
      break;
    }
  }
  if (pos_ == key_start) return -1;
  key = s_.substr(key_start, pos_ - key_start);
  skip_ws();
  if (!match("=")) return -1;
  skip_ws();
  if (pos_ >= s_.size() || s_[pos_] != '"') return -1;  // canonical uses "
  ++pos_;
  const std::size_t end = s_.find('"', pos_);
  if (end == std::string_view::npos) return -1;
  raw_value = s_.substr(pos_, end - pos_);
  pos_ = end + 1;
  return 1;
}

/// Reads character data up to the next '<'; false when the document ends.
bool VotableReader::read_text_until_lt(std::string_view& raw) {
  const std::size_t lt = s_.find('<', pos_);
  if (lt == std::string_view::npos) return false;
  raw = s_.substr(pos_, lt - pos_);
  pos_ = lt;
  return true;
}

/// Returns `raw` with entities resolved, using the reusable scratch buffer
/// only when an entity is actually present.
std::string_view VotableReader::unescaped(std::string_view raw) {
  if (raw.find('&') == std::string_view::npos) return raw;
  scratch_.clear();
  xml_unescape_append(raw, scratch_);
  return scratch_;
}

void VotableReader::assign_unescaped(std::string_view raw, std::string& target) {
  if (raw.find('&') == std::string_view::npos) {
    target.assign(raw.data(), raw.size());
    return;
  }
  target.clear();
  xml_unescape_append(raw, target);
}

VotableReader::FastResult VotableReader::try_fast(Table& out) {
  pos_ = 0;
  skip_ws();
  if (match("<?xml")) {
    const std::size_t end = s_.find("?>", pos_);
    if (end == std::string_view::npos) return FastResult::kFallback;
    pos_ = end + 2;
  }
  skip_ws();
  if (!match("<VOTABLE")) return FastResult::kFallback;
  {
    std::string_view k, v;
    int r;
    while ((r = parse_attr(k, v)) == 1) {
    }
    if (r != 0) return FastResult::kFallback;  // a childless VOTABLE is odd
  }
  skip_ws();
  if (!match("<RESOURCE>")) return FastResult::kFallback;
  skip_ws();
  if (!match("<TABLE")) return FastResult::kFallback;

  // TABLE attributes: only `name` in the canonical layout.
  std::string_view table_name_raw;
  bool has_name = false;
  {
    std::string_view k, v;
    int r;
    while ((r = parse_attr(k, v)) == 1) {
      if (k == "name") {
        table_name_raw = v;
        has_name = true;
      } else {
        return FastResult::kFallback;
      }
    }
    if (r != 0) return FastResult::kFallback;
  }

  // Header: optional DESCRIPTION, then FIELDs, until DATA or </TABLE>.
  fields_.clear();  // keeps capacity; Field strings below reuse theirs
  std::size_t nfields = 0;
  std::string_view table_desc_raw;
  bool has_desc = false;
  bool rows_present = false;
  for (;;) {
    skip_ws();
    if (match("</TABLE>")) break;
    if (match("<DESCRIPTION>")) {
      if (has_desc || nfields > 0) return FastResult::kFallback;
      if (!read_text_until_lt(table_desc_raw)) return FastResult::kFallback;
      if (!match("</DESCRIPTION>")) return FastResult::kFallback;
      has_desc = true;
      continue;
    }
    if (match("<FIELD")) {
      if (nfields == fields_.size()) fields_.emplace_back();
      Field& f = fields_[nfields];
      f.name.clear();
      f.unit.clear();
      f.ucd.clear();
      f.description.clear();
      f.datatype = DataType::kString;
      std::string_view k, v;
      int r;
      while ((r = parse_attr(k, v)) == 1) {
        if (k == "name") {
          assign_unescaped(v, f.name);
        } else if (k == "datatype") {
          const auto dt = datatype_from_votable(std::string(unescaped(v)));
          if (!dt) {
            error_ = Error(ErrorCode::kParseError,
                           "unsupported FIELD datatype '" + std::string(v) + "'");
            return FastResult::kError;
          }
          f.datatype = *dt;
        } else if (k == "arraysize") {
          // accepted and ignored, as in the tree parser
        } else if (k == "unit") {
          assign_unescaped(v, f.unit);
        } else if (k == "ucd") {
          assign_unescaped(v, f.ucd);
        } else {
          return FastResult::kFallback;
        }
      }
      if (r == 1 || r == -1) return FastResult::kFallback;
      if (r == 0) {
        // Non-self-closing FIELD: canonical layout nests one DESCRIPTION.
        skip_ws();
        if (!match("<DESCRIPTION>")) return FastResult::kFallback;
        std::string_view raw;
        if (!read_text_until_lt(raw)) return FastResult::kFallback;
        if (!match("</DESCRIPTION>")) return FastResult::kFallback;
        assign_unescaped(raw, f.description);
        skip_ws();
        if (!match("</FIELD>")) return FastResult::kFallback;
      }
      ++nfields;
      continue;
    }
    if (match("<DATA>")) {
      rows_present = true;
      break;
    }
    return FastResult::kFallback;
  }
  fields_.resize(nfields);

  // Adopt the schema: recycle the destination's storage when it matches.
  bool same_schema = out.fields().size() == fields_.size();
  for (std::size_t i = 0; same_schema && i < fields_.size(); ++i) {
    const Field& a = out.fields()[i];
    const Field& b = fields_[i];
    same_schema = a.name == b.name && a.datatype == b.datatype &&
                  a.unit == b.unit && a.ucd == b.ucd &&
                  a.description == b.description;
  }
  if (!same_schema) out = Table(fields_);
  if (has_name) {
    assign_unescaped(table_name_raw, out.name);
  } else {
    out.name.clear();
  }
  if (has_desc) {
    assign_unescaped(table_desc_raw, out.description);
  } else {
    out.description.clear();
  }

  if (!rows_present) {
    // Header-only table (</TABLE> already consumed).
    out.resize_rows(0);
    skip_ws();
    if (!match("</RESOURCE>")) return FastResult::kFallback;
    skip_ws();
    if (!match("</VOTABLE>")) return FastResult::kFallback;
    skip_ws();
    return pos_ == s_.size() ? FastResult::kOk : FastResult::kFallback;
  }
  return parse_rows(out);
}

VotableReader::FastResult VotableReader::parse_rows(Table& out) {
  skip_ws();
  std::size_t r = 0;
  if (match("<TABLEDATA/>")) {
    // empty table
  } else {
    if (!match("<TABLEDATA>")) return FastResult::kFallback;
    const std::size_t columns = out.num_columns();
    for (;;) {
      skip_ws();
      if (match("</TABLEDATA>")) break;
      bool empty_row = false;
      if (match("<TR/>")) {
        empty_row = true;
      } else if (!match("<TR>")) {
        return FastResult::kFallback;
      }
      if (r >= out.num_rows()) out.resize_rows(r + 1);
      Row& row = out.row(r);
      std::size_t c = 0;
      if (!empty_row) {
        for (;;) {
          skip_ws();
          if (match("</TR>")) break;
          bool null_cell = false;
          std::string_view raw;
          if (match("<TD/>")) {
            null_cell = true;
          } else if (match("<TD>")) {
            if (!read_text_until_lt(raw)) return FastResult::kFallback;
            if (!match("</TD>")) return FastResult::kFallback;
          } else {
            return FastResult::kFallback;
          }
          if (c >= columns) {
            error_ = Error(ErrorCode::kParseError,
                           format("TR has more than %zu TDs", columns));
            return FastResult::kError;
          }
          if (null_cell) {
            row[c] = Value();
          } else {
            const Status s =
                row[c].assign_parse(unescaped(raw), out.fields()[c].datatype);
            if (!s.ok()) {
              error_ = s.error();
              return FastResult::kError;
            }
          }
          ++c;
        }
      }
      if (c != columns) {
        error_ = Error(ErrorCode::kParseError,
                       format("TR has %zu TDs, expected %zu", c, columns));
        return FastResult::kError;
      }
      ++r;
    }
  }
  out.resize_rows(r);
  skip_ws();
  if (!match("</DATA>")) return FastResult::kFallback;
  skip_ws();
  if (!match("</TABLE>")) return FastResult::kFallback;
  skip_ws();
  if (!match("</RESOURCE>")) return FastResult::kFallback;
  skip_ws();
  if (!match("</VOTABLE>")) return FastResult::kFallback;
  skip_ws();
  return pos_ == s_.size() ? FastResult::kOk : FastResult::kFallback;
}

Status VotableReader::read(const std::string& xml_text, Table& out) {
  s_ = xml_text;
  const FastResult r = try_fast(out);
  s_ = {};
  if (r == FastResult::kOk) return Status::Ok();
  if (r == FastResult::kError) return error_;
  auto doc = xml_parse(xml_text);
  if (!doc.ok()) return doc.error();
  auto table = from_votable_tree(*doc.value());
  if (!table.ok()) return table.error();
  out = std::move(table.value());
  return Status::Ok();
}

Expected<Table> from_votable_xml(const std::string& xml_text) {
  Table out;
  VotableReader reader;
  const Status s = reader.read(xml_text, out);
  if (!s.ok()) return s.error();
  return out;
}

Status write_votable_file(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) return Error(ErrorCode::kIoError, "cannot open " + path);
  out << to_votable_xml(table);
  if (!out) return Error(ErrorCode::kIoError, "short write to " + path);
  return Status::Ok();
}

Expected<Table> read_votable_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return from_votable_xml(ss.str());
}

}  // namespace nvo::votable
