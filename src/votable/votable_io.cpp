#include "votable/votable_io.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace nvo::votable {

std::unique_ptr<XmlNode> to_votable_tree(const Table& table) {
  auto root = std::make_unique<XmlNode>();
  root->name = "VOTABLE";
  root->set_attr("version", "1.1");
  XmlNode& resource = root->append_child("RESOURCE");
  XmlNode& tbl = resource.append_child("TABLE");
  if (!table.name.empty()) tbl.set_attr("name", table.name);
  if (!table.description.empty()) {
    tbl.append_child("DESCRIPTION").text = table.description;
  }
  for (const Field& f : table.fields()) {
    XmlNode& field = tbl.append_child("FIELD");
    field.set_attr("name", f.name);
    field.set_attr("datatype", to_votable_datatype(f.datatype));
    if (f.datatype == DataType::kString) field.set_attr("arraysize", "*");
    if (!f.unit.empty()) field.set_attr("unit", f.unit);
    if (!f.ucd.empty()) field.set_attr("ucd", f.ucd);
    if (!f.description.empty()) {
      field.append_child("DESCRIPTION").text = f.description;
    }
  }
  XmlNode& tabledata = tbl.append_child("DATA").append_child("TABLEDATA");
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    XmlNode& tr = tabledata.append_child("TR");
    for (const Value& cell : table.row(r)) {
      tr.append_child("TD").text = cell.to_text();
    }
  }
  return root;
}

std::string to_votable_xml(const Table& table) {
  return xml_serialize(*to_votable_tree(table));
}

Expected<Table> from_votable_tree(const XmlNode& root) {
  if (root.name != "VOTABLE") {
    return Error(ErrorCode::kParseError, "root element is not VOTABLE");
  }
  const XmlNode* resource = root.child("RESOURCE");
  if (!resource) return Error(ErrorCode::kParseError, "no RESOURCE element");
  const XmlNode* tbl = resource->child("TABLE");
  if (!tbl) return Error(ErrorCode::kParseError, "no TABLE element");

  std::vector<Field> fields;
  for (const XmlNode* field_node : tbl->children_named("FIELD")) {
    Field f;
    f.name = field_node->attr("name").value_or("");
    const std::string dt = field_node->attr("datatype").value_or("char");
    const auto parsed = datatype_from_votable(dt);
    if (!parsed) {
      return Error(ErrorCode::kParseError, "unsupported FIELD datatype '" + dt + "'");
    }
    f.datatype = *parsed;
    f.unit = field_node->attr("unit").value_or("");
    f.ucd = field_node->attr("ucd").value_or("");
    if (const XmlNode* d = field_node->child("DESCRIPTION")) f.description = d->text;
    fields.push_back(std::move(f));
  }

  Table out(std::move(fields));
  out.name = tbl->attr("name").value_or("");
  if (const XmlNode* d = tbl->child("DESCRIPTION")) out.description = d->text;

  const XmlNode* data = tbl->child("DATA");
  if (!data) return out;  // header-only table is legal
  const XmlNode* tabledata = data->child("TABLEDATA");
  if (!tabledata) return out;

  for (const XmlNode* tr : tabledata->children_named("TR")) {
    const auto tds = tr->children_named("TD");
    if (tds.size() != out.num_columns()) {
      return Error(ErrorCode::kParseError,
                   format("TR has %zu TDs, expected %zu", tds.size(), out.num_columns()));
    }
    Row row;
    row.reserve(tds.size());
    for (std::size_t c = 0; c < tds.size(); ++c) {
      auto v = Value::parse(tds[c]->text, out.fields()[c].datatype);
      if (!v.ok()) return v.error();
      row.push_back(std::move(v.value()));
    }
    const Status s = out.append_row(std::move(row));
    if (!s.ok()) return s.error();
  }
  return out;
}

Expected<Table> from_votable_xml(const std::string& xml_text) {
  auto doc = xml_parse(xml_text);
  if (!doc.ok()) return doc.error();
  return from_votable_tree(*doc.value());
}

Status write_votable_file(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) return Error(ErrorCode::kIoError, "cannot open " + path);
  out << to_votable_xml(table);
  if (!out) return Error(ErrorCode::kIoError, "short write to " + path);
  return Status::Ok();
}

Expected<Table> read_votable_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return from_votable_xml(ss.str());
}

}  // namespace nvo::votable
