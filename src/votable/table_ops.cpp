#include "votable/table_ops.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/strings.hpp"

namespace nvo::votable {

namespace {

/// Join keys compare by canonical text, so a long 42 matches a string "42"
/// coming from a different archive's schema — the heterogeneity the paper's
/// catalogs actually exhibited.
std::string key_text(const Value& v) { return v.to_text(); }

/// Fills `keys` with canonical key texts and reports whether every key is
/// non-null and strictly increasing. When both operands of a join satisfy
/// this (the common case for catalogs keyed on generator-ordered galaxy
/// ids), a single forward merge reproduces the hash join's output — keys
/// are unique, so each left row has at most one match and output order is
/// left order either way — without materializing the index.
bool strictly_increasing_keys(const Table& t, std::size_t key_col,
                              std::vector<std::string>& keys) {
  keys.clear();
  keys.reserve(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    const Value& v = t.row(r)[key_col];
    if (v.is_null()) return false;
    keys.push_back(key_text(v));
    if (r > 0 && !(keys[r - 1] < keys[r])) return false;
  }
  return true;
}

}  // namespace

Expected<Table> join(const Table& left, const Table& right,
                     const std::string& left_key, const std::string& right_key,
                     JoinKind kind) {
  const auto lk = left.column_index(left_key);
  if (!lk) return Error(ErrorCode::kNotFound, "left key column '" + left_key + "'");
  const auto rk = right.column_index(right_key);
  if (!rk) return Error(ErrorCode::kNotFound, "right key column '" + right_key + "'");

  // Output schema.
  std::vector<Field> fields = left.fields();
  std::vector<std::size_t> right_cols;  // column indices copied from right
  for (std::size_t c = 0; c < right.num_columns(); ++c) {
    if (c == *rk) continue;
    Field f = right.fields()[c];
    const bool clash = std::any_of(fields.begin(), fields.end(),
                                   [&](const Field& g) { return g.name == f.name; });
    if (clash) f.name += "_2";
    fields.push_back(std::move(f));
    right_cols.push_back(c);
  }
  Table out(std::move(fields));
  out.name = left.name;
  out.description = "join(" + left.name + ", " + right.name + ") on " + left_key;

  // Merge fast path: both key columns pre-sorted (strictly increasing) —
  // one synchronized forward pass, no hash table.
  std::vector<std::string> lkeys, rkeys;
  if (strictly_increasing_keys(left, *lk, lkeys) &&
      strictly_increasing_keys(right, *rk, rkeys)) {
    std::size_t ri = 0;
    for (std::size_t lr = 0; lr < left.num_rows(); ++lr) {
      while (ri < right.num_rows() && rkeys[ri] < lkeys[lr]) ++ri;
      if (ri < right.num_rows() && rkeys[ri] == lkeys[lr]) {
        Row row = left.row(lr);
        row.reserve(row.size() + right_cols.size());
        for (std::size_t c : right_cols) row.push_back(right.row(ri)[c]);
        (void)out.append_row(std::move(row));
      } else if (kind == JoinKind::kLeft) {
        Row row = left.row(lr);
        row.resize(row.size() + right_cols.size());  // null-filled right side
        (void)out.append_row(std::move(row));
      }
    }
    return out;
  }

  // Build hash index over the right table.
  std::unordered_multimap<std::string, std::size_t> index;
  index.reserve(right.num_rows());
  for (std::size_t r = 0; r < right.num_rows(); ++r) {
    const Value& v = right.row(r)[*rk];
    if (v.is_null()) continue;  // null keys never match
    index.emplace(key_text(v), r);
  }

  for (std::size_t lr = 0; lr < left.num_rows(); ++lr) {
    const Value& key = left.row(lr)[*lk];
    bool matched = false;
    if (!key.is_null()) {
      auto [begin, end] = index.equal_range(key_text(key));
      for (auto it = begin; it != end; ++it) {
        Row row = left.row(lr);
        row.reserve(row.size() + right_cols.size());
        for (std::size_t c : right_cols) row.push_back(right.row(it->second)[c]);
        (void)out.append_row(std::move(row));
        matched = true;
      }
    }
    if (!matched && kind == JoinKind::kLeft) {
      Row row = left.row(lr);
      row.resize(row.size() + right_cols.size());  // null-filled right side
      (void)out.append_row(std::move(row));
    }
  }
  return out;
}

Expected<Table> vstack(const Table& top, const Table& bottom) {
  // Map bottom columns onto top's schema by name.
  std::vector<std::size_t> mapping(top.num_columns());
  for (std::size_t c = 0; c < top.num_columns(); ++c) {
    const Field& f = top.fields()[c];
    const auto idx = bottom.column_index(f.name);
    if (!idx) {
      return Error(ErrorCode::kInvalidArgument,
                   "vstack: bottom table lacks column '" + f.name + "'");
    }
    if (bottom.fields()[*idx].datatype != f.datatype) {
      return Error(ErrorCode::kInvalidArgument,
                   "vstack: datatype mismatch on column '" + f.name + "'");
    }
    mapping[c] = *idx;
  }
  Table out(top.fields());
  out.name = top.name;
  out.description = top.description;
  out.reserve_rows(top.num_rows() + bottom.num_rows());
  for (const Row& r : top.rows()) (void)out.append_row(r);
  for (const Row& r : bottom.rows()) {
    Row row;
    row.reserve(mapping.size());
    for (std::size_t c : mapping) row.push_back(r[c]);
    (void)out.append_row(std::move(row));
  }
  return out;
}

Expected<Table> vstack_all(std::vector<Table> parts) {
  if (parts.empty()) return Table();
  Table out(parts.front().fields());
  out.name = parts.front().name;
  out.description = parts.front().description;
  std::size_t total_rows = 0;
  for (const Table& t : parts) total_rows += t.num_rows();
  out.reserve_rows(total_rows);
  for (Table& t : parts) {
    // Map this part's columns onto the output schema by name (same rules as
    // vstack), then move its rows across.
    std::vector<std::size_t> mapping(out.num_columns());
    bool identity = true;
    for (std::size_t c = 0; c < out.num_columns(); ++c) {
      const Field& f = out.fields()[c];
      const auto idx = t.column_index(f.name);
      if (!idx) {
        return Error(ErrorCode::kInvalidArgument,
                     "vstack: table lacks column '" + f.name + "'");
      }
      if (t.fields()[*idx].datatype != f.datatype) {
        return Error(ErrorCode::kInvalidArgument,
                     "vstack: datatype mismatch on column '" + f.name + "'");
      }
      mapping[c] = *idx;
      identity = identity && *idx == c;
    }
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      if (identity) {
        (void)out.append_row(std::move(t.row(r)));
      } else {
        Row row;
        row.reserve(mapping.size());
        for (std::size_t c : mapping) row.push_back(std::move(t.row(r)[c]));
        (void)out.append_row(std::move(row));
      }
    }
  }
  return out;
}

Table select(const Table& table, const std::function<bool(const Row&)>& predicate) {
  Table out(table.fields());
  out.name = table.name;
  out.description = table.description;
  for (const Row& r : table.rows()) {
    if (predicate(r)) (void)out.append_row(r);
  }
  return out;
}

Expected<Table> sort_by(const Table& table, const std::string& column, bool ascending) {
  const auto idx = table.column_index(column);
  if (!idx) return Error(ErrorCode::kNotFound, "sort column '" + column + "'");
  std::vector<std::size_t> order(table.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto va = table.row(a)[*idx].as_number();
    const auto vb = table.row(b)[*idx].as_number();
    if (!va && !vb) return false;
    if (!va) return false;  // nulls last regardless of direction
    if (!vb) return true;
    return ascending ? *va < *vb : *va > *vb;
  });
  Table out(table.fields());
  out.name = table.name;
  out.description = table.description;
  out.reserve_rows(table.num_rows());
  for (std::size_t i : order) (void)out.append_row(table.row(i));
  return out;
}

Expected<Table> project(const Table& table, const std::vector<std::string>& columns) {
  std::vector<std::size_t> idx;
  std::vector<Field> fields;
  for (const std::string& name : columns) {
    const auto i = table.column_index(name);
    if (!i) return Error(ErrorCode::kNotFound, "project column '" + name + "'");
    idx.push_back(*i);
    fields.push_back(table.fields()[*i]);
  }
  Table out(std::move(fields));
  out.name = table.name;
  out.reserve_rows(table.num_rows());
  for (const Row& r : table.rows()) {
    Row row;
    row.reserve(idx.size());
    for (std::size_t i : idx) row.push_back(r[i]);
    (void)out.append_row(std::move(row));
  }
  return out;
}

Table with_column(const Table& table, Field field,
                  const std::function<Value(const Row&, std::size_t)>& compute) {
  Table out = table;
  const auto existing = out.column_index(field.name);
  if (!existing) out.add_column(field);
  const std::size_t col = out.column_index(field.name).value();
  for (std::size_t r = 0; r < out.num_rows(); ++r) {
    out.row(r)[col] = compute(table.row(r), r);
  }
  return out;
}

}  // namespace nvo::votable
