// Typed tabular data: the in-memory model behind VOTable documents. Columns
// carry the VOTable FIELD metadata (name, datatype, unit, UCD); cells are
// typed values with explicit nulls, which is how the paper's pipeline
// represented failed per-galaxy computations ("a validity flag to the set of
// returned values").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/expected.hpp"

namespace nvo::votable {

/// VOTable primitive datatypes we support (the subset the prototype used).
enum class DataType { kDouble, kLong, kString, kBool };

const char* to_votable_datatype(DataType t);
std::optional<DataType> datatype_from_votable(const std::string& s);

/// Column metadata, mirroring the VOTable FIELD element.
struct Field {
  std::string name;
  DataType datatype = DataType::kDouble;
  std::string unit;         ///< e.g. "deg", "mag/arcsec2"
  std::string ucd;          ///< Unified Content Descriptor, e.g. "pos.eq.ra"
  std::string description;  ///< free text
};

/// One cell: a typed value or null. Null cells serialize as empty TD
/// elements, the VOTable convention.
class Value {
 public:
  Value() = default;  // null
  static Value of_double(double v) { return Value(Payload(v)); }
  static Value of_long(long long v) { return Value(Payload(v)); }
  static Value of_string(std::string v) { return Value(Payload(std::move(v))); }
  static Value of_bool(bool v) { return Value(Payload(v)); }

  bool is_null() const { return !payload_.has_value(); }

  /// Typed reads; return nullopt on null or type mismatch.
  std::optional<double> as_double() const;
  std::optional<long long> as_long() const;
  std::optional<std::string> as_string() const;
  std::optional<bool> as_bool() const;

  /// Borrowed view of a string payload; nullptr for null or non-string.
  /// Lets hot paths read string cells without copying.
  const std::string* string_ref() const;

  /// Numeric read with coercion: longs convert to double.
  std::optional<double> as_number() const;

  /// Canonical text rendering used for TD cells and join keys.
  std::string to_text() const;

  /// Appends the canonical text rendering to `out` without allocating
  /// (doubles/longs format into a stack buffer). to_text() delegates here.
  void append_text_to(std::string& out) const;

  /// Parses text into a value of the given type; empty text -> null.
  static Expected<Value> parse(const std::string& text, DataType type);

  /// In-place parse that reuses this cell's existing storage: when the cell
  /// already holds a string, its capacity is recycled, so steady-state
  /// re-parsing of same-shaped tables performs zero heap allocations.
  Status assign_parse(std::string_view text, DataType type);

  bool operator==(const Value& other) const;

 private:
  using Payload = std::variant<double, long long, std::string, bool>;
  explicit Value(Payload p) : payload_(std::move(p)) {}
  std::optional<Payload> payload_;
};

using Row = std::vector<Value>;

/// A table: ordered fields + rows. Invariant: every row has exactly
/// fields().size() cells (enforced by append_row).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  std::size_t num_columns() const { return fields_.size(); }
  std::size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Index of a column by name; nullopt when absent.
  std::optional<std::size_t> column_index(const std::string& name) const;

  /// Appends a column; existing rows get null cells.
  void add_column(Field field);

  /// Appends a row; fails if the arity is wrong.
  Status append_row(Row row);

  /// Resizes to exactly `n` rows. New rows are null-filled at the correct
  /// arity; surviving rows keep their cell storage, which lets parsers
  /// recycle allocations when refilling a table of the same shape.
  void resize_rows(std::size_t n);

  /// Pre-sizes the row storage for builders that know their row count up
  /// front (concat_results, catalog assembly) — one allocation instead of
  /// log2(n) growth steps.
  void reserve_rows(std::size_t n) { rows_.reserve(n); }

  const Row& row(std::size_t i) const { return rows_[i]; }
  Row& row(std::size_t i) { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Cell accessors by column name (null Value when column is missing).
  const Value& cell(std::size_t row_index, const std::string& column) const;
  void set_cell(std::size_t row_index, const std::string& column, Value v);

  /// Table-level metadata (maps to the TABLE name attribute / DESCRIPTION).
  std::string name;
  std::string description;

 private:
  std::vector<Field> fields_;
  std::vector<Row> rows_;
  static const Value kNull;
};

}  // namespace nvo::votable
