// Generic VOTable manipulations. The paper singles these out: "the ability
// to join VOTables in a general way ... is one of a few general-purpose
// VOTable manipulations that should be implemented as a generic, external
// service" (§4.2) and "we also discovered the general utility of a service
// that could join two VOTables on an arbitrary column" (§5). This module is
// that service, implemented as a library the portal calls internally.
#pragma once

#include <functional>
#include <string>

#include "common/expected.hpp"
#include "votable/table.hpp"

namespace nvo::votable {

enum class JoinKind { kInner, kLeft };

/// Hash join of two tables on arbitrary key columns. Result columns are all
/// of `left` followed by all of `right` except the right key; name clashes
/// on non-key columns get a "_2" suffix. With kLeft, unmatched left rows are
/// kept with null right cells — exactly what the portal needs to merge
/// computed morphology back into the galaxy catalog when some galaxies
/// failed to compute.
Expected<Table> join(const Table& left, const Table& right,
                     const std::string& left_key, const std::string& right_key,
                     JoinKind kind = JoinKind::kInner);

/// Concatenates rows of `top` and `bottom`; schemas must match by column
/// name and datatype (order-insensitive; bottom columns are permuted). This
/// is the "final concatenation of results" the web service performs.
Expected<Table> vstack(const Table& top, const Table& bottom);

/// One-pass concatenation of many tables under vstack's schema rules, with
/// the first table supplying the output schema/name/description. Rows are
/// moved out of `parts`, so with k tables of n rows each this is O(k·n)
/// where a pairwise vstack fold re-copies the accumulator k times.
Expected<Table> vstack_all(std::vector<Table> parts);

/// Rows satisfying the predicate.
Table select(const Table& table, const std::function<bool(const Row&)>& predicate);

/// Stable sort by a numeric column (ascending by default). Null cells sort
/// last.
Expected<Table> sort_by(const Table& table, const std::string& column,
                        bool ascending = true);

/// Projection onto a subset of columns, in the given order.
Expected<Table> project(const Table& table, const std::vector<std::string>& columns);

/// Adds (or overwrites) a column computed row-by-row.
Table with_column(const Table& table, Field field,
                  const std::function<Value(const Row&, std::size_t)>& compute);

}  // namespace nvo::votable
