#include "services/http.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "services/integrity.hpp"

namespace nvo::services {

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_value(s[i + 1]);
      const int lo = hex_value(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i] == '+' ? ' ' : s[i];
  }
  return out;
}

}  // namespace

std::string url_encode(const std::string& s) {
  std::string out;
  for (char c : s) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
                      c == '~' || c == ',';
    if (safe) {
      out += c;
    } else {
      out += format("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

std::string Url::to_string() const {
  std::string out = scheme + "://" + host + path;
  bool first = true;
  for (const auto& [k, v] : query) {
    out += first ? '?' : '&';
    first = false;
    out += k;
    out += '=';
    out += url_encode(v);
  }
  return out;
}

Expected<Url> Url::parse(const std::string& text) {
  Url url;
  std::string_view rest = text;
  const std::size_t scheme_end = rest.find("://");
  if (scheme_end == std::string_view::npos) {
    return Error(ErrorCode::kParseError, "no scheme in URL: " + text);
  }
  url.scheme = std::string(rest.substr(0, scheme_end));
  rest.remove_prefix(scheme_end + 3);
  const std::size_t path_start = rest.find('/');
  if (path_start == std::string_view::npos) {
    url.host = std::string(rest);
    url.path = "/";
    return url;
  }
  url.host = std::string(rest.substr(0, path_start));
  rest.remove_prefix(path_start);
  const std::size_t query_start = rest.find('?');
  if (query_start == std::string_view::npos) {
    url.path = std::string(rest);
    return url;
  }
  url.path = std::string(rest.substr(0, query_start));
  rest.remove_prefix(query_start + 1);
  for (const std::string& pair : split(rest, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      url.query[url_decode(pair)] = "";
    } else {
      url.query[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
  }
  return url;
}

std::optional<std::string> Url::param(const std::string& key) const {
  const auto it = query.find(key);
  if (it == query.end()) return std::nullopt;
  return it->second;
}

std::optional<double> Url::param_double(const std::string& key) const {
  const auto v = param(key);
  if (!v) return std::nullopt;
  return parse_double(*v);
}

HttpResponse HttpResponse::text(std::string s, const std::string& type) {
  HttpResponse r;
  r.content_type = type;
  r.body.assign(s.begin(), s.end());
  return r;
}

HttpResponse HttpResponse::binary(std::vector<std::uint8_t> bytes,
                                  const std::string& type) {
  HttpResponse r;
  r.content_type = type;
  r.body = std::move(bytes);
  return r;
}

HttpFabric::HttpFabric(std::uint64_t seed) : seed_(seed), rng_(seed) {}

void HttpFabric::route(const std::string& host, const std::string& path_prefix,
                       Handler handler, EndpointModel model) {
  std::lock_guard lock(mu_);
  routes_.push_back(Route{host, path_prefix, std::move(handler), model, {}});
}

void HttpFabric::reset_metrics() {
  std::lock_guard lock(mu_);
  // Counters only. clock_ is deliberately left alone: simulated time is
  // monotonic, and breakers/chaos windows are scheduled against it.
  metrics_ = {};
  for (Route& r : routes_) r.metrics = {};
}

HttpFabric::Metrics HttpFabric::metrics() const {
  std::lock_guard lock(mu_);
  return metrics_;
}

std::optional<HttpFabric::Metrics> HttpFabric::metrics_for(
    const std::string& host, const std::string& path_prefix) const {
  std::lock_guard lock(mu_);
  for (const Route& r : routes_) {
    if (r.host == host && r.path_prefix == path_prefix) return r.metrics;
  }
  return std::nullopt;
}

std::vector<std::pair<std::string, std::string>> HttpFabric::route_keys() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::string>> keys;
  keys.reserve(routes_.size());
  for (const Route& r : routes_) keys.emplace_back(r.host, r.path_prefix);
  return keys;
}

void HttpFabric::charge_elapsed(double ms) {
  metrics_.total_elapsed_ms += ms;
  clock_.advance(ms);
}

void HttpFabric::advance_clock(double ms) {
  std::lock_guard lock(mu_);
  if (ms > 0.0) charge_elapsed(ms);
}

Status HttpFabric::set_up(const std::string& host, const std::string& path_prefix,
                          bool up) {
  std::lock_guard lock(mu_);
  for (Route& r : routes_) {
    if (r.host == host && r.path_prefix == path_prefix) {
      r.model.up = up;
      return Status::Ok();
    }
  }
  return Error(ErrorCode::kNotFound, "no route " + host + path_prefix);
}

HttpFabric::Route* HttpFabric::find_route(const Url& url) {
  Route* best = nullptr;
  for (Route& r : routes_) {
    if (r.host != url.host) continue;
    if (!starts_with(url.path, r.path_prefix)) continue;
    if (!best || r.path_prefix.size() > best->path_prefix.size()) best = &r;
  }
  return best;
}

Expected<HttpResponse> HttpFabric::get(const std::string& url_text) {
  const auto parsed = Url::parse(url_text);
  if (!parsed.ok()) return parsed.error();
  const Url& url = parsed.value();

  // One lock around the whole dispatch keeps the RNG stream, the fault
  // injector, and the metric charges atomic per request — the draw order
  // (and therefore every simulated timing) is identical to the historical
  // single-threaded behaviour as long as requests arrive in the same order.
  std::lock_guard lock(mu_);

  ++metrics_.requests;
  Route* route = find_route(url);
  if (!route) {
    ++metrics_.failures;
    ++metrics_.unrouted;
    return Error(ErrorCode::kNotFound, "no service at " + url.host + url.path);
  }
  ++route->metrics.requests;

  // Effective model for this request: the route's configuration, optionally
  // overridden by the chaos injector (outage windows, flaky periods,
  // bandwidth brownouts scripted against the simulated clock).
  EndpointModel model = route->model;
  if (injector_) {
    if (auto override_model = injector_(url, model, now_ms())) {
      model = *override_model;
    }
  }

  const auto charge_failure = [&](double elapsed_ms) {
    ++metrics_.failures;
    ++route->metrics.failures;
    charge_elapsed(elapsed_ms);
    route->metrics.total_elapsed_ms += elapsed_ms;
  };

  if (!model.up) {
    ++metrics_.hard_down;
    ++route->metrics.hard_down;
    charge_failure(model.latency_ms);
    return Error(ErrorCode::kServiceUnavailable, url.host + " is down");
  }
  if (model.failure_rate > 0.0 && rng_.bernoulli(model.failure_rate)) {
    ++metrics_.transient_failures;
    ++route->metrics.transient_failures;
    charge_failure(model.latency_ms);
    return Error(ErrorCode::kServiceUnavailable,
                 "transient failure at " + url.host + url.path);
  }

  auto result = route->handler(url);
  if (!result.ok()) {
    charge_failure(model.latency_ms);
    return result;
  }
  HttpResponse response = std::move(result.value());
  // Sign the payload at serve time: content digest bound to the canonical
  // request URL. Clients recompute after transfer; anything that alters the
  // bytes in flight (or replays another resource's bytes) breaks the match.
  response.digest = integrity::sign_payload(response.body, url);
  // Chaos corruption: the tamperer may alter the already-signed response
  // (bit flips, truncation, stale replays). Counted so tests can assert
  // every injected corruption was detected downstream.
  if (tamperer_ && tamperer_(url, response, now_ms(), rng_)) {
    ++metrics_.corruptions_injected;
    ++route->metrics.corruptions_injected;
  }
  // Simulated cost: connection latency + payload / bandwidth, with a mild
  // stochastic jitter so repeated queries are not suspiciously identical.
  const double megabits = static_cast<double>(response.body.size()) * 8.0 / 1e6;
  const double transfer_ms =
      model.bandwidth_mbps > 0.0 ? megabits / model.bandwidth_mbps * 1000.0 : 0.0;
  const double jitter = 1.0 + 0.1 * (rng_.uniform() - 0.5);
  response.elapsed_ms = (model.latency_ms + transfer_ms) * jitter;

  metrics_.bytes_transferred += response.body.size();
  charge_elapsed(response.elapsed_ms);
  route->metrics.bytes_transferred += response.body.size();
  route->metrics.total_elapsed_ms += response.elapsed_ms;
  return response;
}

}  // namespace nvo::services
