// Overload control for the multi-tenant portal front-end: admission with
// bounded per-tenant and global queues plus a byte budget over queued work
// (explicit load shedding with retry-after, instead of queue collapse), and
// deficit-round-robin fair scheduling across tenants.
//
// Both classes are deliberately mechanism-only — no threads, no clocks of
// their own. The caller (portal::AsyncPortal) drives them from its
// discrete-event loop on the fabric's simulated clock and charges actual
// simulated milliseconds, so fairness is measured in the same currency as
// every latency in this system.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nvo::services {

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

struct AdmissionConfig {
  /// Max queued (admitted, not yet running) requests per tenant.
  std::size_t per_tenant_queue_limit = 8;
  /// Max queued requests across every tenant.
  std::size_t global_queue_limit = 32;
  /// Budget over the estimated bytes of queued work; 0 disables. A third
  /// shedding axis for workloads whose requests differ wildly in size.
  std::size_t queued_bytes_budget = 0;
  /// Retry-after = floor + per_queued * (backlog the request ran into):
  /// the deeper the congestion, the longer the client is told to stay away.
  double retry_after_floor_ms = 500.0;
  double retry_after_per_queued_ms = 250.0;
};

/// Why a request was shed (or kAdmitted).
enum class ShedReason { kAdmitted, kTenantQueueFull, kGlobalQueueFull, kByteBudget };
const char* to_string(ShedReason reason);

struct AdmissionDecision {
  bool admitted = true;
  ShedReason reason = ShedReason::kAdmitted;
  /// Explicit back-pressure signal handed to the client on a shed; 0 when
  /// admitted.
  double retry_after_ms = 0.0;
};

struct AdmissionStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_tenant_queue = 0;
  std::uint64_t shed_global_queue = 0;
  std::uint64_t shed_byte_budget = 0;
  std::size_t queued = 0;        ///< current global queue depth
  std::size_t queued_bytes = 0;  ///< current estimated queued bytes
  /// High-water marks: the bounded-memory proof — they can never exceed the
  /// configured limits no matter the offered load.
  std::size_t max_queued = 0;
  std::size_t max_queued_bytes = 0;

  std::uint64_t shed_total() const {
    return shed_tenant_queue + shed_global_queue + shed_byte_budget;
  }
};

/// Decides, at submission time and in O(1), whether a request may join the
/// queue. Shedding is instantaneous and explicit — the caller gets a reason
/// and a retry-after, never a timeout. Not thread-safe (driven by the
/// single-threaded portal scheduler).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Offers one request of `estimated_bytes`. On admit, the queue
  /// accounting is charged; the caller must call release() exactly once
  /// when the request leaves the queue (starts running, or is abandoned).
  AdmissionDecision offer(const std::string& tenant, std::size_t estimated_bytes);
  void release(const std::string& tenant, std::size_t estimated_bytes);

  /// The retry-after a shed at the CURRENT global backlog would carry
  /// (floor + per_queued * backlog, clamped to the floor). Terminal records
  /// that invite a resubmission (expired, cancelled) use this so every
  /// back-pressure hint the portal hands out obeys the same floors.
  double retry_after_hint() const { return retry_after_for(stats_.queued); }

  std::size_t queued(const std::string& tenant) const;
  const AdmissionStats& stats() const { return stats_; }
  const AdmissionConfig& config() const { return config_; }

 private:
  double retry_after_for(std::size_t backlog) const;

  AdmissionConfig config_;
  AdmissionStats stats_;
  std::map<std::string, std::size_t> per_tenant_;
};

// ---------------------------------------------------------------------------
// Deficit round robin
// ---------------------------------------------------------------------------

struct DrrConfig {
  /// Simulated milliseconds of service granted per tenant per top-up round,
  /// scaled by the tenant's weight. Smaller quanta interleave tenants at
  /// finer granularity; larger quanta approach run-to-completion.
  double quantum_ms = 250.0;
};

/// Deficit round robin over tenants, with post-charging: pick() returns a
/// tenant whose deficit is non-negative (topping everyone up by
/// quantum*weight when all are in debt), the caller runs one scheduling
/// unit and charges the *actual* simulated cost afterwards. Because stage
/// costs are unknown in advance, a tenant can overdraw by at most one
/// stage; the debt is repaid before it is served again, so long-run service
/// shares converge to the weights. Idle tenants are deactivated and their
/// deficit reset — a tenant cannot bank credit while it has no backlog.
class DeficitRoundRobin {
 public:
  explicit DeficitRoundRobin(DrrConfig config = {});

  /// Relative service share; default 1.0. May be set before or after
  /// activation.
  void set_weight(const std::string& tenant, double weight);
  double weight(const std::string& tenant) const;

  /// Marks the tenant as having backlog (idempotent).
  void activate(const std::string& tenant);
  /// Removes the tenant from the ring and forfeits its deficit (idempotent).
  void deactivate(const std::string& tenant);
  bool active(const std::string& tenant) const;
  std::size_t active_count() const { return ring_.size(); }

  /// Next tenant to serve ("" when none active). Deterministic: round-robin
  /// order over activation sequence, gated by deficits.
  std::string pick();
  /// Charges actual cost after serving (may push the deficit negative).
  void charge(const std::string& tenant, double cost_ms);
  double deficit(const std::string& tenant) const;

 private:
  DrrConfig config_;
  std::map<std::string, double> weights_;
  std::map<std::string, double> deficits_;
  std::vector<std::string> ring_;  ///< active tenants, activation order
  std::size_t cursor_ = 0;         ///< ring index served last (or next)
};

}  // namespace nvo::services
