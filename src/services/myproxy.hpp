// MyProxy-style credential management. The paper: "This prototype web
// service submits jobs onto the Grid using the credentials stored at the
// web server. However, for a more general solution, we are planning to use
// MyProxy as a solution for authentication of users" (§4.3.1 item 5).
// This is that general solution: an online credential repository where
// users deposit delegated proxy credentials under a passphrase, and
// services retrieve short-lived delegations to act on the user's behalf —
// the GSI delegation model reduced to its observable behaviour (subjects,
// lifetimes, delegation chains, revocation).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"

namespace nvo::services {

/// A (possibly delegated) proxy credential.
struct ProxyCredential {
  std::string subject;        ///< "/O=NVO/CN=Jane Astronomer"
  std::string issuer;         ///< signing identity (user or upstream proxy)
  int delegation_depth = 0;   ///< 0 = end-entity, 1 = first proxy, ...
  double issued_at_s = 0.0;
  double lifetime_s = 43200;  ///< 12h default, MyProxy-style
  std::uint64_t serial = 0;   ///< unique per credential

  bool expired(double now_s) const { return now_s >= issued_at_s + lifetime_s; }
  double remaining_s(double now_s) const {
    return std::max(0.0, issued_at_s + lifetime_s - now_s);
  }
};

/// The online repository ("myproxy-server").
class MyProxyServer {
 public:
  /// Deposits a long-lived credential for `subject` protected by
  /// `passphrase` (myproxy-init). Re-depositing replaces it.
  void store(const std::string& subject, const std::string& passphrase,
             double now_s, double lifetime_s = 7.0 * 86400.0);

  /// Retrieves a short-lived delegated proxy (myproxy-logon): requires the
  /// right passphrase and an unexpired stored credential. The delegation's
  /// lifetime is capped by both `requested_lifetime_s` and the stored
  /// credential's remaining lifetime.
  Expected<ProxyCredential> retrieve(const std::string& subject,
                                     const std::string& passphrase, double now_s,
                                     double requested_lifetime_s = 43200.0);

  /// Revokes a subject's stored credential; outstanding proxies validated
  /// against this server fail afterwards.
  Status revoke(const std::string& subject);

  /// Validates a proxy: known unrevoked subject, unexpired, sane chain.
  Status validate(const ProxyCredential& proxy, double now_s) const;

  /// Further delegation (e.g. the compute service delegating to a job):
  /// child proxy with depth+1, lifetime capped by the parent's remainder.
  Expected<ProxyCredential> delegate(const ProxyCredential& parent, double now_s,
                                     double requested_lifetime_s) const;

  std::size_t stored_count() const { return stored_.size(); }

 private:
  struct Stored {
    std::string passphrase;
    ProxyCredential credential;
    bool revoked = false;
  };
  std::map<std::string, Stored> stored_;
  std::uint64_t next_serial_ = 1;
  // Serials issued by this server (so validate can reject forgeries).
  std::map<std::uint64_t, std::string> issued_;  // serial -> subject
};

}  // namespace nvo::services
