// Bridges from the services layer's native stat structs to the unified
// obs::MetricsRegistry. These live here (not in src/obs) so obs stays
// dependency-free; each overload registers the component's counters/gauges
// under the naming convention of DESIGN.md §9.
//
// All registrations capture the component by reference: the component must
// outlive the registry (or be unregister()ed first). Dynamic families —
// per-route fabric counters, per-endpoint breaker state — are registered as
// collectors, so routes added and hosts contacted after registration still
// appear in later snapshots.
#pragma once

#include <string>

#include "grid/threadpool.hpp"
#include "obs/metrics.hpp"
#include "services/http.hpp"
#include "services/replica_cache.hpp"
#include "services/resilience.hpp"

namespace nvo::services {

/// `<prefix>.requests|failures|unrouted|hard_down|transient_failures|
/// bytes_transferred|total_elapsed_ms` plus the gauge `<prefix>.now_ms`
/// (the monotonic simulated clock) and, via a collector,
/// `<prefix>.route.<host>.<path>.<counter>` per registered route.
void register_metrics(obs::MetricsRegistry& registry, const HttpFabric& fabric,
                      const std::string& prefix = "fabric");

/// `<prefix>.hits|misses|insertions|evictions` counters and
/// `<prefix>.bytes|entries` gauges.
void register_metrics(obs::MetricsRegistry& registry, const ReplicaCache& cache,
                      const std::string& prefix = "cache.replica");

/// `<prefix>.attempts|successes|failures|retries|breaker_trips|
/// short_circuits|failovers|backoff_wait_ms` totals plus, via a collector,
/// `<prefix>.breaker.<host>.state` gauges (0 closed, 1 half-open, 2 open)
/// and per-host attempt/failure counters.
void register_metrics(obs::MetricsRegistry& registry, const ResilientClient& client,
                      const std::string& prefix = "client");

/// `<prefix>.queue_depth|active_tasks|threads` gauges plus
/// `<prefix>.idle_ms`, the cumulative worker park time — the direct
/// observable for pipeline overlap (a barriered executor idles the pool
/// while staging runs; a pipelined one keeps it flat).
void register_metrics(obs::MetricsRegistry& registry, const grid::ThreadPool& pool,
                      const std::string& prefix = "pool");

/// Metric-name-safe rendition of a host or path ("mast.stsci.edu/siap" ->
/// "mast.stsci.edu.siap"): '/' becomes '.', duplicate dots collapse.
std::string metric_key(const std::string& raw);

}  // namespace nvo::services
