// Service registry: the capability the paper names as the most obvious
// missing NVO infrastructure — "a general registry of image and catalog
// services ... would allow the user to discover and choose the appropriate
// data resources rather than being limited to the ones that were hard-coded
// into the portal" (§4.2, §5). Records are registered with typed
// capabilities and discovered by capability + coverage + keyword.
#pragma once

#include <string>
#include <vector>

#include "common/expected.hpp"
#include "sky/coords.hpp"

namespace nvo::services {

enum class Capability { kConeSearch, kSimpleImageAccess, kCutout, kCompute };

const char* to_string(Capability c);

struct ServiceRecord {
  std::string identifier;   ///< e.g. "ivo://sim.mast/dss"
  std::string title;        ///< human-readable
  std::string publisher;    ///< data center name
  Capability capability = Capability::kConeSearch;
  std::string base_url;     ///< endpoint to call
  std::string waveband;     ///< "optical", "x-ray", ...
  // Sky coverage: all-sky when radius_deg < 0.
  sky::Equatorial coverage_center;
  double coverage_radius_deg = -1.0;

  bool covers(const sky::Equatorial& pos) const;
};

/// In-memory registry with the query shapes a portal needs.
class Registry {
 public:
  /// Registers a record; identifiers are unique.
  Status add(ServiceRecord record);

  std::size_t size() const { return records_.size(); }
  const std::vector<ServiceRecord>& records() const { return records_; }

  /// All services with a capability.
  std::vector<ServiceRecord> find_by_capability(Capability c) const;

  /// Services with the capability whose coverage includes `pos`, optionally
  /// filtered by waveband ("" = any).
  std::vector<ServiceRecord> discover(Capability c, const sky::Equatorial& pos,
                                      const std::string& waveband = "") const;

  /// Case-insensitive substring search over title + publisher.
  std::vector<ServiceRecord> search_keyword(const std::string& keyword) const;

  /// Lookup by identifier.
  Expected<ServiceRecord> resolve(const std::string& identifier) const;

 private:
  std::vector<ServiceRecord> records_;
};

}  // namespace nvo::services
