// The generic VOTable manipulation *service*. The paper twice calls this
// out as missing infrastructure: "joining is one of a few general-purpose
// VOTable manipulations that should be implemented as a generic, external
// service that could be used by a number of different NVO applications"
// (§4.2) and "we also discovered the general utility of a service that
// could join two VOTables on an arbitrary column or manipulate tables in
// other ways" (§5). This module exposes the votable/table_ops library as
// HTTP endpoints in the VO style: operand tables are named by URL, fetched
// by the service, and the result returned as a VOTable document.
//
//   /tables/join?left=<url>&right=<url>&lkey=<col>&rkey=<col>&kind=inner|left
//   /tables/sort?in=<url>&by=<col>&order=asc|desc
//   /tables/project?in=<url>&cols=a,b,c
#pragma once

#include <string>

#include "common/expected.hpp"
#include "services/http.hpp"
#include "votable/table.hpp"

namespace nvo::services {

/// Base URLs of the registered endpoints.
struct TableService {
  std::string join_url;
  std::string sort_url;
  std::string project_url;
};

/// Registers the service on the fabric under `host`. The fabric reference
/// must outlive the routes (the service fetches its operand tables through
/// the same fabric).
TableService register_table_service(HttpFabric& fabric,
                                    const std::string& host = "tables.nvo.sim");

/// Client-side conveniences.
Expected<votable::Table> remote_join(HttpFabric& fabric, const TableService& svc,
                                     const std::string& left_url,
                                     const std::string& right_url,
                                     const std::string& left_key,
                                     const std::string& right_key,
                                     bool left_join = false);
Expected<votable::Table> remote_sort(HttpFabric& fabric, const TableService& svc,
                                     const std::string& table_url,
                                     const std::string& by_column,
                                     bool ascending = true);
Expected<votable::Table> remote_project(HttpFabric& fabric, const TableService& svc,
                                        const std::string& table_url,
                                        const std::vector<std::string>& columns);

}  // namespace nvo::services
