// The five data centers of paper Table 1, wired onto an HttpFabric and
// backed by the synthetic universe:
//
//   Chandra X-ray Center   Chandra Data Archive          SIA
//   NASA HEASARC           ROSAT X-ray data              SIA
//   NASA IPAC              NASA Extragalactic DB (NED)   Cone Search
//   CADC                   CNOC Survey                   SIA + Cone Search
//   MAST (STScI)           Digitized Sky Survey (DSS)    SIA + Cone Search
//
// MAST additionally hosts the dynamic galaxy cutout service the pipeline
// feeds the compute jobs from. Endpoint performance models differ per
// center, reflecting the paper's observation that the per-request SIA
// latency is the application's bottleneck.
#pragma once

#include <string>
#include <vector>

#include "services/http.hpp"
#include "sim/universe.hpp"

namespace nvo::services {

/// Base URLs of the registered federation endpoints.
struct Federation {
  std::string chandra_sia;  ///< Chandra Data Archive SIA metadata query
  std::string rosat_sia;    ///< HEASARC ROSAT SIA metadata query
  std::string ned_cone;     ///< IPAC NED Cone Search
  std::string cnoc_sia;     ///< CADC CNOC SIA
  std::string cnoc_cone;    ///< CADC CNOC Cone Search
  std::string dss_sia;      ///< MAST DSS SIA (large-scale fields)
  std::string cutout_sia;   ///< MAST galaxy cutout SIA (dynamic cutouts)
  std::string mirror_host;  ///< DSS/cutout failover mirror ("" if disabled)

  /// Hosts, for availability toggling in fault-injection tests.
  static constexpr const char* kChandraHost = "cda.harvard.sim";
  static constexpr const char* kHeasarcHost = "heasarc.gsfc.sim";
  static constexpr const char* kIpacHost = "ned.ipac.sim";
  static constexpr const char* kCadcHost = "cadc.hia.sim";
  static constexpr const char* kMastHost = "archive.stsci.sim";
  static constexpr const char* kMirrorHost = "dss-mirror.stsci.sim";

  /// Every archive host (mirror excluded), for fleet-wide chaos schedules.
  static const std::vector<std::string>& archive_hosts();
};

struct FederationOptions {
  /// Register a second copy of the MAST DSS + cutout services under
  /// `mirror_host` (slightly slower, as a farther mirror would be) so the
  /// resilience layer can fail over when the primary archive is down.
  bool with_mirror = true;
  std::string mirror_host = Federation::kMirrorHost;
};

/// Registers all Table-1 services on the fabric, serving data from the
/// universe. The universe reference must outlive the fabric's routes.
Federation register_federation(HttpFabric& fabric, const sim::Universe& universe,
                               const FederationOptions& options = {});

}  // namespace nvo::services
