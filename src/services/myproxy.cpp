#include "services/myproxy.hpp"

#include <algorithm>

namespace nvo::services {

void MyProxyServer::store(const std::string& subject, const std::string& passphrase,
                          double now_s, double lifetime_s) {
  Stored entry;
  entry.passphrase = passphrase;
  entry.credential.subject = subject;
  entry.credential.issuer = subject;  // end-entity self-issued
  entry.credential.delegation_depth = 0;
  entry.credential.issued_at_s = now_s;
  entry.credential.lifetime_s = lifetime_s;
  entry.credential.serial = next_serial_++;
  issued_[entry.credential.serial] = subject;
  stored_[subject] = std::move(entry);
}

Expected<ProxyCredential> MyProxyServer::retrieve(const std::string& subject,
                                                  const std::string& passphrase,
                                                  double now_s,
                                                  double requested_lifetime_s) {
  const auto it = stored_.find(subject);
  if (it == stored_.end()) {
    return Error(ErrorCode::kNotFound, "no stored credential for " + subject);
  }
  Stored& entry = it->second;
  if (entry.revoked) {
    return Error(ErrorCode::kInvalidArgument, "credential revoked for " + subject);
  }
  if (entry.passphrase != passphrase) {
    return Error(ErrorCode::kInvalidArgument, "bad passphrase for " + subject);
  }
  if (entry.credential.expired(now_s)) {
    return Error(ErrorCode::kTimeout, "stored credential expired for " + subject);
  }
  ProxyCredential proxy;
  proxy.subject = subject;
  proxy.issuer = subject;
  proxy.delegation_depth = 1;
  proxy.issued_at_s = now_s;
  proxy.lifetime_s =
      std::min(requested_lifetime_s, entry.credential.remaining_s(now_s));
  proxy.serial = next_serial_++;
  issued_[proxy.serial] = subject;
  return proxy;
}

Status MyProxyServer::revoke(const std::string& subject) {
  const auto it = stored_.find(subject);
  if (it == stored_.end()) return Error(ErrorCode::kNotFound, subject);
  it->second.revoked = true;
  return Status::Ok();
}

Status MyProxyServer::validate(const ProxyCredential& proxy, double now_s) const {
  const auto issued = issued_.find(proxy.serial);
  if (issued == issued_.end() || issued->second != proxy.subject) {
    return Error(ErrorCode::kInvalidArgument,
                 "unknown credential serial for " + proxy.subject);
  }
  const auto it = stored_.find(proxy.subject);
  if (it == stored_.end()) {
    return Error(ErrorCode::kNotFound, "unknown subject " + proxy.subject);
  }
  if (it->second.revoked) {
    return Error(ErrorCode::kInvalidArgument, "revoked: " + proxy.subject);
  }
  if (proxy.expired(now_s)) {
    return Error(ErrorCode::kTimeout, "proxy expired: " + proxy.subject);
  }
  if (proxy.delegation_depth < 0 || proxy.delegation_depth > 10) {
    return Error(ErrorCode::kInvalidArgument, "implausible delegation depth");
  }
  return Status::Ok();
}

Expected<ProxyCredential> MyProxyServer::delegate(const ProxyCredential& parent,
                                                  double now_s,
                                                  double requested_lifetime_s) const {
  const Status parent_ok = validate(parent, now_s);
  if (!parent_ok.ok()) return parent_ok.error();
  ProxyCredential child = parent;
  child.issuer = parent.subject;
  child.delegation_depth = parent.delegation_depth + 1;
  child.issued_at_s = now_s;
  child.lifetime_s = std::min(requested_lifetime_s, parent.remaining_s(now_s));
  // Delegations inherit the parent's serial lineage: the server recognizes
  // them through the parent's registration. A fresh serial would require a
  // callback to the server; GSI delegation is offline, so we keep the
  // parent's serial (subject binding is what validate checks).
  return child;
}

}  // namespace nvo::services
