// Request-lifecycle primitives for the portal → dataflow → multi-pool
// stack: an end-to-end deadline budget on the simulated clock, and the
// request context (budget + cancellation token) that rides a request from
// AsyncPortal::submit down through federation queries, ResilientClient
// calls, stage-in channels, and DagManSim dispatch.
//
// Propagation rules (DESIGN.md §14):
//   * The budget is an ABSOLUTE deadline on the fabric clock, fixed at
//     submit time. Every layer computes its remaining allowance as
//     (deadline - now); nothing re-bases, so queue time, backoff sleeps,
//     staging latency, and simulated makespan all draw from one account.
//   * A layer that cannot finish inside the remaining budget fails fast
//     with kDeadlineExceeded instead of doing the work and missing anyway.
//   * Cancellation (CancellationToken) is the same plumbing with a
//     different trigger: the client abandons the request rather than the
//     clock running out.
#pragma once

#include <limits>

#include "common/cancel.hpp"

namespace nvo::services {

/// An absolute deadline on the simulated clock (milliseconds). The default
/// is unbounded — a request with no SLO behaves exactly as before this
/// layer existed.
struct DeadlineBudget {
  double deadline_ms = std::numeric_limits<double>::infinity();

  static DeadlineBudget unbounded() { return {}; }
  /// Budget of `budget_ms` starting at `now_ms`; non-positive budget means
  /// unbounded (the "no SLO" convention used by configs throughout).
  static DeadlineBudget after(double now_ms, double budget_ms) {
    DeadlineBudget b;
    if (budget_ms > 0.0) b.deadline_ms = now_ms + budget_ms;
    return b;
  }

  bool bounded() const {
    return deadline_ms != std::numeric_limits<double>::infinity();
  }
  bool expired(double now_ms) const { return now_ms >= deadline_ms; }
  /// Remaining allowance at `now_ms`, clamped at zero (infinity when
  /// unbounded).
  double remaining_ms(double now_ms) const {
    if (!bounded()) return std::numeric_limits<double>::infinity();
    return deadline_ms > now_ms ? deadline_ms - now_ms : 0.0;
  }
};

/// Everything a request carries through the stack. Cheap to copy; the
/// token is a shared handle, the budget a value.
struct RequestContext {
  DeadlineBudget budget;
  CancellationToken cancel;

  bool cancelled() const { return cancel.cancelled(); }
  bool expired(double now_ms) const { return budget.expired(now_ms); }
};

}  // namespace nvo::services
