#include "services/resilience.hpp"

#include <algorithm>
#include <limits>

#include "common/strings.hpp"

namespace nvo::services {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

bool CircuitBreaker::allow(double now_ms) {
  if (state_ == BreakerState::kOpen) {
    if (now_ms - opened_at_ms_ >= policy_.cooldown_ms) {
      state_ = BreakerState::kHalfOpen;
      return true;
    }
    return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::record_failure(double now_ms) {
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen ||
      consecutive_failures_ >= policy_.failure_threshold) {
    trip(now_ms);
  }
}

void CircuitBreaker::trip(double now_ms) {
  if (state_ != BreakerState::kOpen) ++trips_;
  state_ = BreakerState::kOpen;
  opened_at_ms_ = now_ms;
  consecutive_failures_ = 0;
}

// ---------------------------------------------------------------------------
// ResilientClient
// ---------------------------------------------------------------------------

namespace {

/// Failures worth retrying / breaker-counting: the 503 class (down archives,
/// sampled transient faults) and client-side timeouts. Protocol-level errors
/// (bad parameters, genuinely missing data) are returned to the caller
/// unchanged — retrying a 404 only burns the deadline.
bool retryable(const Error& e) {
  return e.code == ErrorCode::kServiceUnavailable || e.code == ErrorCode::kTimeout ||
         e.code == ErrorCode::kDataCorruption;
}

}  // namespace

ResilientClient::ResilientClient(HttpFabric& fabric, RetryPolicy retry,
                                 BreakerPolicy breaker, const std::string& label)
    : fabric_(fabric),
      retry_(retry),
      breaker_policy_(breaker),
      // Seed lineage: the fabric's construction seed, mixed with the client
      // label — never the fabric's live generator, which would perturb the
      // fault-free request-jitter stream.
      jitter_rng_(fabric.seed() ^ hash64(label) ^ 0x5E11E47ull) {}

void ResilientClient::add_mirror(const std::string& host,
                                 const std::string& mirror_host) {
  mirrors_[host] = mirror_host;
}

ResilientClient::Endpoint& ResilientClient::endpoint(const std::string& host) {
  auto it = endpoints_.find(host);
  if (it == endpoints_.end()) {
    it = endpoints_.emplace(host, Endpoint{CircuitBreaker(breaker_policy_), {}}).first;
  }
  return it->second;
}

const EndpointStats* ResilientClient::stats_for(const std::string& host) const {
  const auto it = endpoints_.find(host);
  return it == endpoints_.end() ? nullptr : &it->second.stats;
}

EndpointStats ResilientClient::totals() const {
  EndpointStats sum;
  for (const auto& [host, ep] : endpoints_) {
    sum.attempts += ep.stats.attempts;
    sum.successes += ep.stats.successes;
    sum.failures += ep.stats.failures;
    sum.retries += ep.stats.retries;
    sum.breaker_trips += ep.stats.breaker_trips;
    sum.short_circuits += ep.stats.short_circuits;
    sum.failovers += ep.stats.failovers;
    sum.integrity_failures += ep.stats.integrity_failures;
    sum.quarantine_skips += ep.stats.quarantine_skips;
    sum.backoff_wait_ms += ep.stats.backoff_wait_ms;
  }
  return sum;
}

std::vector<std::string> ResilientClient::known_hosts() const {
  std::vector<std::string> hosts;
  hosts.reserve(endpoints_.size());
  for (const auto& [host, ep] : endpoints_) hosts.push_back(host);
  return hosts;
}

BreakerState ResilientClient::breaker_state(const std::string& host) const {
  const auto it = endpoints_.find(host);
  return it == endpoints_.end() ? BreakerState::kClosed : it->second.breaker.state();
}

Expected<HttpResponse> ResilientClient::get_from_host(const Url& url,
                                                      double deadline_ms,
                                                      Endpoint& ep) {
  Error last(ErrorCode::kServiceUnavailable, url.host + " unreachable");
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    const double now = fabric_.now_ms();
    if (ctx_.cancelled()) {
      return Error(ErrorCode::kCancelled,
                   "request cancelled before attempt at " + url.host + url.path);
    }
    if (now >= deadline_ms) {
      return Error(ErrorCode::kTimeout,
                   "deadline exhausted before attempt at " + url.host + url.path);
    }
    if (!ep.breaker.allow(now)) {
      ++ep.stats.short_circuits;
      return Error(ErrorCode::kServiceUnavailable,
                   "circuit open for " + url.host + " (cooling down)");
    }

    ++ep.stats.attempts;
    if (attempt > 1) ++ep.stats.retries;
    auto response = fabric_.get(url.to_string());
    const double attempt_ms = fabric_.now_ms() - now;

    if (response.ok()) {
      const bool timed_out =
          retry_.attempt_timeout_ms > 0.0 && attempt_ms > retry_.attempt_timeout_ms;
      const bool server_error = response->status >= 500;
      // Post-transfer integrity check: a "successful" reply whose bytes do
      // not match the serve-time signature is a transport fault in disguise
      // (bit flip, short read, stale replica) and is retried like a 503.
      const bool corrupted = !timed_out && !server_error && retry_.verify_digests &&
                             integrity::payload_mismatch(*response, url);
      if (!timed_out && !server_error && !corrupted) {
        // Success — or a protocol-level reply (4xx) the caller must see.
        // Verified bytes also lift any standing quarantine on this replica.
        quarantine_.release(url.host, integrity::resource_key(url));
        ep.breaker.record_success();
        ++ep.stats.successes;
        return response;
      }
      if (corrupted) {
        ++ep.stats.integrity_failures;
        quarantine_.quarantine(url.host, integrity::resource_key(url),
                               fabric_.now_ms(), retry_.quarantine_ms);
        last = Error(ErrorCode::kDataCorruption,
                     format("payload digest mismatch at %s%s (%zu bytes)",
                            url.host.c_str(), url.path.c_str(),
                            response->body.size()));
      } else {
        last = timed_out
                   ? Error(ErrorCode::kTimeout,
                           format("attempt took %.0f ms (budget %.0f) at %s%s",
                                  attempt_ms, retry_.attempt_timeout_ms,
                                  url.host.c_str(), url.path.c_str()))
                   : Error(ErrorCode::kServiceUnavailable,
                           format("server error %d at %s%s", response->status,
                                  url.host.c_str(), url.path.c_str()));
      }
    } else if (!retryable(response.error())) {
      // Application-level miss (404 and friends): no breaker penalty, no
      // retry — hammering an endpoint for data it does not have is not a
      // fault-tolerance strategy.
      return response.error();
    } else {
      last = response.error();
    }

    const std::uint64_t trips_before = ep.breaker.trips();
    ep.breaker.record_failure(fabric_.now_ms());
    ep.stats.breaker_trips += ep.breaker.trips() - trips_before;
    ++ep.stats.failures;

    if (attempt == retry_.max_attempts) break;
    if (ep.breaker.state() == BreakerState::kOpen) break;  // no point waiting

    // Capped exponential backoff with seeded jitter, spent on the simulated
    // clock (and therefore visible in every elapsed-time account upstream).
    double wait = retry_.base_backoff_ms;
    for (int i = 1; i < attempt; ++i) wait *= retry_.backoff_multiplier;
    wait = std::min(wait, retry_.max_backoff_ms);
    if (retry_.jitter_fraction > 0.0) {
      wait *= 1.0 + retry_.jitter_fraction * (jitter_rng_.uniform() - 0.5);
    }
    // A backoff that would cross the deadline is clamped to the remaining
    // budget: the clock advances exactly to the deadline — elapsed-time
    // accounting upstream stays exact — and the timeout is reported AT the
    // deadline, never a full jittered backoff later.
    const double remaining = deadline_ms - fabric_.now_ms();
    if (wait >= remaining) {
      if (remaining > 0.0) {
        fabric_.advance_clock(remaining);
        ep.stats.backoff_wait_ms += remaining;
      }
      return Error(ErrorCode::kTimeout,
                   "retry deadline exhausted at " + url.host + url.path);
    }
    fabric_.advance_clock(wait);
    ep.stats.backoff_wait_ms += wait;
  }
  return last;
}

Expected<HttpResponse> ResilientClient::get(const std::string& url_text) {
  const auto parsed = Url::parse(url_text);
  if (!parsed.ok()) return parsed.error();

  if (ctx_.cancelled()) {
    return Error(ErrorCode::kCancelled,
                 "request cancelled before fetch of " + url_text);
  }
  // The per-call deadline is the TIGHTER of the policy's own budget and the
  // request's remaining end-to-end budget: a request running out of SLO
  // must not spend a fresh full retry budget on one late fetch.
  const double deadline_ms =
      std::min(retry_.deadline_ms > 0.0
                   ? fabric_.now_ms() + retry_.deadline_ms
                   : std::numeric_limits<double>::infinity(),
               ctx_.budget.deadline_ms);

  Endpoint& primary = endpoint(parsed->host);
  const auto mirror = mirrors_.find(parsed->host);

  // Quarantine reroute: if this endpoint recently served bytes for this
  // resource that failed verification, do not re-trust it while the
  // quarantine lasts — go straight to the alternate archive/mirror.
  if (mirror != mirrors_.end() &&
      quarantine_.is_quarantined(parsed->host, integrity::resource_key(parsed.value()),
                                 fabric_.now_ms())) {
    quarantine_.count_skip();
    ++primary.stats.quarantine_skips;
    Url mirrored = parsed.value();
    mirrored.host = mirror->second;
    auto fallback = get_from_host(mirrored, deadline_ms, endpoint(mirror->second));
    if (fallback.ok()) {
      ++primary.stats.failovers;
      return fallback;
    }
    if (!retryable(fallback.error())) return fallback;
    // Mirror also unhealthy: fall through and give the primary its chance.
  }

  auto response = get_from_host(parsed.value(), deadline_ms, primary);
  if (response.ok()) return response;
  if (!retryable(response.error())) return response;

  // Failover: re-issue against the registered mirror, same path and query.
  if (mirror == mirrors_.end()) return response;
  Url mirrored = parsed.value();
  mirrored.host = mirror->second;
  auto fallback = get_from_host(mirrored, deadline_ms, endpoint(mirror->second));
  if (fallback.ok()) ++primary.stats.failovers;
  return fallback;
}

}  // namespace nvo::services
