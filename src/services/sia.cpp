#include "services/sia.hpp"

#include "common/strings.hpp"
#include "votable/votable_io.hpp"

namespace nvo::services {

votable::Table sia_records_to_table(const std::vector<SiaRecord>& records) {
  using votable::DataType;
  using votable::Field;
  using votable::Value;
  votable::Table t({
      Field{"title", DataType::kString, "", "meta.title", ""},
      Field{"ra", DataType::kDouble, "deg", "pos.eq.ra", "image center RA"},
      Field{"dec", DataType::kDouble, "deg", "pos.eq.dec", "image center Dec"},
      Field{"size", DataType::kDouble, "deg", "", "angular extent"},
      Field{"format", DataType::kString, "", "meta.code.mime", ""},
      Field{"acref", DataType::kString, "", "meta.ref.url", "access reference"},
      Field{"filesize", DataType::kLong, "byte", "", "estimated size"},
  });
  t.name = "SIA_RESULTS";
  for (const SiaRecord& r : records) {
    (void)t.append_row({Value::of_string(r.title), Value::of_double(r.center.ra_deg),
                        Value::of_double(r.center.dec_deg), Value::of_double(r.size_deg),
                        Value::of_string(r.format), Value::of_string(r.access_url),
                        Value::of_long(static_cast<long long>(r.estimated_bytes))});
  }
  return t;
}

Expected<std::vector<SiaRecord>> sia_records_from_table(const votable::Table& table) {
  for (const char* col : {"title", "ra", "dec", "size", "format", "acref"}) {
    if (!table.column_index(col)) {
      return Error(ErrorCode::kParseError, std::string("SIA table lacks column ") + col);
    }
  }
  std::vector<SiaRecord> out;
  out.reserve(table.num_rows());
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    SiaRecord r;
    r.title = table.cell(i, "title").as_string().value_or("");
    r.center.ra_deg = table.cell(i, "ra").as_number().value_or(0.0);
    r.center.dec_deg = table.cell(i, "dec").as_number().value_or(0.0);
    r.size_deg = table.cell(i, "size").as_number().value_or(0.0);
    r.format = table.cell(i, "format").as_string().value_or("image/fits");
    r.access_url = table.cell(i, "acref").as_string().value_or("");
    r.estimated_bytes = static_cast<std::size_t>(
        table.cell(i, "filesize").as_long().value_or(0));
    out.push_back(std::move(r));
  }
  return out;
}

Handler make_sia_query_handler(SiaFinder finder) {
  return [finder = std::move(finder)](const Url& url) -> Expected<HttpResponse> {
    const auto pos = url.param("POS");
    const auto size = url.param_double("SIZE");
    if (!pos || !size || *size <= 0.0) {
      HttpResponse bad = HttpResponse::text("missing or invalid POS/SIZE");
      bad.status = 400;
      return bad;
    }
    const auto parts = split(*pos, ',');
    if (parts.size() != 2) {
      HttpResponse bad = HttpResponse::text("POS must be 'ra,dec'");
      bad.status = 400;
      return bad;
    }
    const auto ra = parse_double(parts[0]);
    const auto dec = parse_double(parts[1]);
    if (!ra || !dec) {
      HttpResponse bad = HttpResponse::text("unparseable POS");
      bad.status = 400;
      return bad;
    }
    const std::vector<SiaRecord> records = finder({*ra, *dec}, *size);
    return HttpResponse::text(votable::to_votable_xml(sia_records_to_table(records)),
                              "text/xml;content=x-votable");
  };
}

Handler make_image_handler(ImageProducer producer) {
  return [producer = std::move(producer)](const Url& url) -> Expected<HttpResponse> {
    auto fits = producer(url);
    if (!fits.ok()) return fits.error();
    return HttpResponse::binary(image::write_fits(fits.value()), "image/fits");
  };
}

Expected<std::vector<SiaRecord>> sia_query(HttpChannel& channel,
                                           const std::string& base_url,
                                           const sky::Equatorial& pos,
                                           double size_deg) {
  const std::string url = format("%s?POS=%.6f,%.6f&SIZE=%.6f", base_url.c_str(),
                                 pos.ra_deg, pos.dec_deg, size_deg);
  auto response = channel.get(url);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kServiceUnavailable,
                 format("SIA query returned %d: %s", response->status,
                        response->body_text().c_str()));
  }
  auto table = votable::from_votable_xml(response->body_text());
  if (!table.ok()) return table.error();
  return sia_records_from_table(table.value());
}

Expected<image::FitsFile> fetch_image(HttpChannel& channel, const std::string& url) {
  auto bytes = fetch_image_bytes(channel, url);
  if (!bytes.ok()) return bytes.error();
  return image::read_fits(bytes.value());
}

Expected<std::vector<std::uint8_t>> fetch_image_bytes(HttpChannel& channel,
                                                      const std::string& url) {
  auto response = channel.get(url);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kServiceUnavailable,
                 format("image fetch returned %d", response->status));
  }
  return std::move(response->body);
}

}  // namespace nvo::services
