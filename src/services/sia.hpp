// The Simple Image Access (SIA) protocol (§3.1): a positional query
// (POS=ra,dec & SIZE=deg) answered with a VOTable of matching image
// descriptions, each carrying an access URL; the image bytes are fetched by
// a second GET on that URL. "This latter interface is general enough to
// provide access to both simple static images from an image archive ... and
// custom cutout images from an image cutout service" — we implement both
// personalities, plus the batched-query extension the paper wishes existed
// ("this could be sped up tremendously if one could query for all images at
// once").
#pragma once

#include <functional>
#include <vector>

#include "common/expected.hpp"
#include "image/fits.hpp"
#include "services/http.hpp"
#include "sky/coords.hpp"
#include "votable/table.hpp"

namespace nvo::services {

/// One row of an SIA metadata response.
struct SiaRecord {
  std::string title;
  sky::Equatorial center;
  double size_deg = 0.0;        ///< angular extent of the image
  std::string format = "image/fits";
  std::string access_url;       ///< GET here for the bytes
  std::size_t estimated_bytes = 0;
};

/// Converts SIA records to/from the protocol's VOTable representation.
votable::Table sia_records_to_table(const std::vector<SiaRecord>& records);
Expected<std::vector<SiaRecord>> sia_records_from_table(const votable::Table& table);

/// Server side, metadata endpoint: wraps a positional image finder. The
/// finder receives the query cone and returns matching records.
using SiaFinder =
    std::function<std::vector<SiaRecord>(const sky::Equatorial& pos, double size_deg)>;
Handler make_sia_query_handler(SiaFinder finder);

/// Server side, image retrieval endpoint: wraps an image producer keyed on
/// the full request URL (producers interpret their own parameters, e.g. the
/// cutout service's POS/SIZE).
using ImageProducer = std::function<Expected<image::FitsFile>(const Url&)>;
Handler make_image_handler(ImageProducer producer);

/// Client side: metadata query. Accepts any HttpChannel — the raw fabric or
/// a ResilientClient for retry/breaker/failover tolerance.
Expected<std::vector<SiaRecord>> sia_query(HttpChannel& channel,
                                           const std::string& base_url,
                                           const sky::Equatorial& pos,
                                           double size_deg);

/// Client side: image fetch (parses the FITS payload).
Expected<image::FitsFile> fetch_image(HttpChannel& channel, const std::string& url);

/// Client side: raw image fetch, when only the bytes are needed (the compute
/// service caches serialized FITS without decoding).
Expected<std::vector<std::uint8_t>> fetch_image_bytes(HttpChannel& channel,
                                                      const std::string& url);

}  // namespace nvo::services
