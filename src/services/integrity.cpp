#include "services/integrity.hpp"

#include "common/rng.hpp"

namespace nvo::services::integrity {

std::uint64_t content_digest(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t content_digest(const std::vector<std::uint8_t>& bytes) {
  return content_digest(bytes.data(), bytes.size());
}

std::uint64_t bind_digest(std::uint64_t content, const std::string& canonical_url) {
  // splitmix64 finalization over the (content, binding) pair: a single-bit
  // change in either input flips roughly half the output bits, and the
  // result is never the "unsigned" sentinel by accident in practice.
  std::uint64_t state = content ^ (hash64(canonical_url) + 0x9e3779b97f4a7c15ull);
  const std::uint64_t mixed = splitmix64(state);
  return mixed == 0 ? 0x9e3779b97f4a7c15ull : mixed;
}

std::uint64_t sign_payload(const std::vector<std::uint8_t>& body, const Url& url) {
  return bind_digest(content_digest(body), url.to_string());
}

bool payload_mismatch(const HttpResponse& response, const Url& url) {
  if (response.digest == 0) return false;  // unsigned fixture response
  return sign_payload(response.body, url) != response.digest;
}

std::string resource_key(const Url& url) { return url.path; }

void QuarantineList::quarantine(const std::string& endpoint,
                                const std::string& resource, double now_ms,
                                double duration_ms) {
  until_ms_[{endpoint, resource}] = now_ms + duration_ms;
  ++stats_.quarantines;
}

bool QuarantineList::is_quarantined(const std::string& endpoint,
                                    const std::string& resource,
                                    double now_ms) const {
  const auto it = until_ms_.find({endpoint, resource});
  if (it == until_ms_.end()) return false;
  if (now_ms >= it->second) {
    until_ms_.erase(it);  // lazy expiry on the simulated clock
    return false;
  }
  return true;
}

void QuarantineList::release(const std::string& endpoint,
                             const std::string& resource) {
  if (until_ms_.erase({endpoint, resource}) > 0) ++stats_.releases;
}

std::size_t QuarantineList::active(double now_ms) const {
  std::size_t n = 0;
  for (auto it = until_ms_.begin(); it != until_ms_.end();) {
    if (now_ms >= it->second) {
      it = until_ms_.erase(it);
    } else {
      ++n;
      ++it;
    }
  }
  return n;
}

}  // namespace nvo::services::integrity
