// Sharded, byte-budgeted LRU cache for staged replicas (cutout images,
// materialized VOTables), content-addressed by logical file name. This is
// the compute service's local GridFTP-class store: entries are registered in
// the Replica Location Service by the owner, so Pegasus workflow reduction
// prunes stage-in transfer nodes for cache-resident LFNs, and evictions are
// reported back so the RLS never advertises a replica the cache has dropped.
//
// Concurrency: the key space is hash-partitioned across shards, each with
// its own mutex and LRU list, so concurrent staging threads contend only
// when they hash to the same shard. Payloads are immutable and handed out
// as shared_ptr, which pins the bytes for in-flight computations — an
// eviction never invalidates data a kernel is reading.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace nvo::services {

struct ReplicaCacheConfig {
  /// Total byte budget, split evenly across shards. 0 means unbounded.
  std::size_t byte_budget = 256ull << 20;
  /// Shard count; rounded up to a power of two. Use 1 for a strict global
  /// LRU order (tests); the default spreads lock contention.
  std::size_t shards = 8;
};

class ReplicaCache {
 public:
  using Payload = std::shared_ptr<const std::vector<std::uint8_t>>;
  /// Invoked for every entry dropped by the LRU policy (and for self-healed
  /// integrity mismatches); owners use it to deregister the replica from
  /// the RLS/grid.
  ///
  /// Lock discipline: the callback always fires OUTSIDE every shard lock,
  /// and the callback slot itself is guarded by a dedicated mutex that is
  /// released before invocation. Re-entrant calls into the same cache from
  /// inside the callback — get/put/contains/digest_of/stats, and even
  /// set_eviction_callback — are therefore safe; a re-entrant put may
  /// trigger nested evictions, whose callbacks fire in nesting order. The
  /// one obligation on the callback is termination: a put from inside a
  /// callback that always overflows the budget recurses until it evicts
  /// nothing new.
  using EvictionCallback = std::function<void(const std::string& lfn)>;

  explicit ReplicaCache(ReplicaCacheConfig config = {});

  /// Looks up and pins a payload; nullptr on miss. Refreshes LRU order.
  /// Every hit re-verifies the stored bytes against the digest recorded at
  /// admission; a mismatch (in-memory rot, or a bug writing through the
  /// immutable payload) self-heals — the entry is dropped, the eviction
  /// callback deregisters it, and the caller sees a miss and re-stages.
  Payload get(const std::string& lfn);

  /// Inserts (or replaces) an entry and returns the pinned payload. May
  /// evict least-recently-used entries from the same shard to fit the
  /// budget; the inserted entry itself is never evicted by its own put.
  /// When `expected_digest` is non-zero the bytes are verified on admission
  /// (FNV-1a content digest, services/integrity.hpp) and a mismatch rejects
  /// the put (nullptr, counted in Stats::integrity_rejects) — corrupt bytes
  /// never become a cacheable replica.
  Payload put(const std::string& lfn, std::vector<std::uint8_t> bytes,
              std::uint64_t expected_digest = 0);

  /// Content digest recorded at admission; 0 when not resident.
  std::uint64_t digest_of(const std::string& lfn) const;

  /// True when resident, without touching LRU order or hit/miss counters.
  bool contains(const std::string& lfn) const;

  void set_eviction_callback(EvictionCallback cb);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t integrity_rejects = 0;    ///< puts refused on digest mismatch
    std::uint64_t integrity_mismatches = 0; ///< hits whose bytes failed re-check
    std::size_t bytes = 0;    ///< resident payload bytes
    std::size_t entries = 0;  ///< resident entry count
  };
  /// Aggregated across shards.
  Stats stats() const;

  const ReplicaCacheConfig& config() const { return config_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// MRU at front. Entries hold iterators into this list.
    std::list<std::string> lru;
    struct Entry {
      Payload payload;
      std::uint64_t digest = 0;  ///< content digest recorded at admission
      std::list<std::string>::iterator lru_it;
    };
    std::unordered_map<std::string, Entry> map;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t integrity_rejects = 0;
    std::uint64_t integrity_mismatches = 0;
  };

  Shard& shard_for(const std::string& lfn);
  const Shard& shard_for(const std::string& lfn) const;

  /// Copies the callback out under cb_mu_ (so set_eviction_callback can
  /// race with eviction paths) and invokes it unlocked.
  void notify_evicted(const std::string& lfn);

  ReplicaCacheConfig config_;
  std::size_t shard_budget_ = 0;  ///< per-shard slice of the byte budget
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex cb_mu_;  ///< guards on_evict_ only; never held in calls
  EvictionCallback on_evict_;
};

}  // namespace nvo::services
