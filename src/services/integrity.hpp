// End-to-end payload integrity for the simulated data plane. The paper's
// execution layer (§4) assumes GridFTP either delivers the bytes or fails;
// nothing in a 2003-era grid detected a transfer that *succeeded with wrong
// bytes*, and a silently corrupted cutout would quietly skew the Conselice
// concentration/asymmetry indices. This module closes that gap:
//
//  - every HttpResponse is signed at serve time with a cheap content digest
//    bound to the canonical request URL (so a stale replica — valid bytes
//    for a *different* resource — is just as detectable as a bit flip);
//  - clients recompute the digest after transfer and treat a mismatch as a
//    retryable transport fault, counting against the unified retry budget;
//  - a QuarantineList remembers (endpoint, resource) pairs that served bad
//    bytes so the failover layer prefers the mirror until the quarantine
//    lapses on the simulated clock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "services/http.hpp"

namespace nvo::services::integrity {

/// FNV-1a over raw bytes. Not cryptographic — the threat model is random
/// corruption (bit flips, truncation, stale replays), not an adversary.
std::uint64_t content_digest(const std::uint8_t* data, std::size_t n);
std::uint64_t content_digest(const std::vector<std::uint8_t>& bytes);

/// Binds a content digest to the resource it was served for. Both sides
/// derive the binding from the *canonical* URL (Url::to_string of the
/// parsed request), so client-side encoding quirks cannot desynchronize
/// the signature.
std::uint64_t bind_digest(std::uint64_t content, const std::string& canonical_url);

/// Serve-time signature: content digest of `body` bound to `url`.
std::uint64_t sign_payload(const std::vector<std::uint8_t>& body, const Url& url);

/// True when `response` carries a signature and it does NOT match the body
/// as received for `url`. Unsigned responses (digest == 0) verify trivially:
/// the fabric signs everything, but hand-built fixtures may not.
bool payload_mismatch(const HttpResponse& response, const Url& url);

/// The quarantine resource key for a URL: the service path only, so one bad
/// payload quarantines the whole endpoint — a cutout service that flipped
/// bits for one galaxy is not re-trusted for the next galaxy's query either.
/// (Host is tracked separately so mirror failover can reuse the key.)
std::string resource_key(const Url& url);

/// Per-endpoint quarantine list. A replica that failed digest verification
/// is quarantined for a stretch of simulated time; while quarantined, the
/// resilient client goes straight to the alternate archive/mirror instead
/// of re-trusting the endpoint that served bad bytes. Entries expire lazily
/// against the simulated clock, or early on a verified success.
class QuarantineList {
 public:
  struct Stats {
    std::uint64_t quarantines = 0;  ///< entries added (re-adds included)
    std::uint64_t releases = 0;     ///< cleared early by a verified fetch
    std::uint64_t skips = 0;        ///< requests rerouted around a quarantine
  };

  void quarantine(const std::string& endpoint, const std::string& resource,
                  double now_ms, double duration_ms);
  bool is_quarantined(const std::string& endpoint, const std::string& resource,
                      double now_ms) const;
  /// Clears an entry after the endpoint served verified bytes again.
  void release(const std::string& endpoint, const std::string& resource);
  /// Records that a request was rerouted around a quarantined endpoint.
  void count_skip() { ++stats_.skips; }

  std::size_t active(double now_ms) const;
  const Stats& stats() const { return stats_; }

 private:
  using Key = std::pair<std::string, std::string>;  ///< (endpoint, resource)
  mutable std::map<Key, double> until_ms_;
  Stats stats_;
};

}  // namespace nvo::services::integrity
