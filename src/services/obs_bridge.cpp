#include "services/obs_bridge.hpp"

namespace nvo::services {

std::string metric_key(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const char mapped = c == '/' ? '.' : c;
    if (mapped == '.' && (out.empty() || out.back() == '.')) continue;
    out += mapped;
  }
  while (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

void register_metrics(obs::MetricsRegistry& registry, const HttpFabric& fabric,
                      const std::string& prefix) {
  const HttpFabric* f = &fabric;
  registry.register_counter(prefix + ".requests",
                            [f] { return static_cast<double>(f->metrics().requests); });
  registry.register_counter(prefix + ".failures",
                            [f] { return static_cast<double>(f->metrics().failures); });
  registry.register_counter(prefix + ".unrouted",
                            [f] { return static_cast<double>(f->metrics().unrouted); });
  registry.register_counter(prefix + ".hard_down",
                            [f] { return static_cast<double>(f->metrics().hard_down); });
  registry.register_counter(prefix + ".transient_failures", [f] {
    return static_cast<double>(f->metrics().transient_failures);
  });
  registry.register_counter(prefix + ".bytes_transferred", [f] {
    return static_cast<double>(f->metrics().bytes_transferred);
  });
  registry.register_counter(prefix + ".total_elapsed_ms",
                            [f] { return f->metrics().total_elapsed_ms; });
  registry.register_counter(prefix + ".corruptions_injected", [f] {
    return static_cast<double>(f->metrics().corruptions_injected);
  });
  registry.register_gauge(prefix + ".now_ms", [f] { return f->now_ms(); });
  registry.register_collector(prefix + ".route", [f, prefix](auto& counters,
                                                             auto& gauges) {
    (void)gauges;
    for (const auto& [host, path] : f->route_keys()) {
      const auto m = f->metrics_for(host, path);
      if (!m) continue;
      const std::string base = prefix + ".route." + metric_key(host + path) + ".";
      counters[base + "requests"] = static_cast<double>(m->requests);
      counters[base + "failures"] = static_cast<double>(m->failures);
      counters[base + "bytes_transferred"] =
          static_cast<double>(m->bytes_transferred);
      counters[base + "total_elapsed_ms"] = m->total_elapsed_ms;
    }
  });
}

void register_metrics(obs::MetricsRegistry& registry, const ReplicaCache& cache,
                      const std::string& prefix) {
  const ReplicaCache* c = &cache;
  registry.register_counter(prefix + ".hits",
                            [c] { return static_cast<double>(c->stats().hits); });
  registry.register_counter(prefix + ".misses",
                            [c] { return static_cast<double>(c->stats().misses); });
  registry.register_counter(prefix + ".insertions",
                            [c] { return static_cast<double>(c->stats().insertions); });
  registry.register_counter(prefix + ".evictions",
                            [c] { return static_cast<double>(c->stats().evictions); });
  registry.register_counter(prefix + ".integrity_rejects", [c] {
    return static_cast<double>(c->stats().integrity_rejects);
  });
  registry.register_counter(prefix + ".integrity_mismatches", [c] {
    return static_cast<double>(c->stats().integrity_mismatches);
  });
  registry.register_gauge(prefix + ".bytes",
                          [c] { return static_cast<double>(c->stats().bytes); });
  registry.register_gauge(prefix + ".entries",
                          [c] { return static_cast<double>(c->stats().entries); });
}

namespace {

double breaker_state_value(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return 0.0;
    case BreakerState::kHalfOpen: return 1.0;
    case BreakerState::kOpen: return 2.0;
  }
  return 0.0;
}

}  // namespace

void register_metrics(obs::MetricsRegistry& registry, const ResilientClient& client,
                      const std::string& prefix) {
  const ResilientClient* c = &client;
  registry.register_counter(prefix + ".attempts",
                            [c] { return static_cast<double>(c->totals().attempts); });
  registry.register_counter(prefix + ".successes",
                            [c] { return static_cast<double>(c->totals().successes); });
  registry.register_counter(prefix + ".failures",
                            [c] { return static_cast<double>(c->totals().failures); });
  registry.register_counter(prefix + ".retries",
                            [c] { return static_cast<double>(c->totals().retries); });
  registry.register_counter(prefix + ".breaker_trips", [c] {
    return static_cast<double>(c->totals().breaker_trips);
  });
  registry.register_counter(prefix + ".short_circuits", [c] {
    return static_cast<double>(c->totals().short_circuits);
  });
  registry.register_counter(prefix + ".failovers",
                            [c] { return static_cast<double>(c->totals().failovers); });
  registry.register_counter(prefix + ".integrity_failures", [c] {
    return static_cast<double>(c->totals().integrity_failures);
  });
  registry.register_counter(prefix + ".quarantine_skips", [c] {
    return static_cast<double>(c->totals().quarantine_skips);
  });
  registry.register_counter(prefix + ".quarantines", [c] {
    return static_cast<double>(c->quarantine().stats().quarantines);
  });
  registry.register_counter(prefix + ".backoff_wait_ms",
                            [c] { return c->totals().backoff_wait_ms; });
  registry.register_collector(prefix + ".breaker", [c, prefix](auto& counters,
                                                               auto& gauges) {
    for (const std::string& host : c->known_hosts()) {
      const std::string base = prefix + ".breaker." + metric_key(host) + ".";
      gauges[base + "state"] = breaker_state_value(c->breaker_state(host));
      if (const EndpointStats* s = c->stats_for(host)) {
        counters[base + "trips"] = static_cast<double>(s->breaker_trips);
        counters[base + "attempts"] = static_cast<double>(s->attempts);
        counters[base + "failures"] = static_cast<double>(s->failures);
      }
    }
  });
}

void register_metrics(obs::MetricsRegistry& registry, const grid::ThreadPool& pool,
                      const std::string& prefix) {
  const grid::ThreadPool* p = &pool;
  registry.register_gauge(prefix + ".queue_depth",
                          [p] { return static_cast<double>(p->queue_depth()); });
  registry.register_gauge(prefix + ".active_tasks",
                          [p] { return static_cast<double>(p->active_tasks()); });
  registry.register_gauge(prefix + ".threads",
                          [p] { return static_cast<double>(p->num_threads()); });
  registry.register_gauge(prefix + ".idle_ms", [p] { return p->idle_ms(); });
  // Cumulative count of cancellable tasks whose cancel branch ran instead of
  // the body — the pool-side evidence that shed/expired requests' queued
  // work was actually dropped, not executed.
  registry.register_gauge(prefix + ".cancelled_tasks", [p] {
    return static_cast<double>(p->cancelled_tasks());
  });
}

}  // namespace nvo::services
