#include "services/admission.hpp"

#include <algorithm>

namespace nvo::services {

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kAdmitted: return "admitted";
    case ShedReason::kTenantQueueFull: return "tenant_queue_full";
    case ShedReason::kGlobalQueueFull: return "global_queue_full";
    case ShedReason::kByteBudget: return "byte_budget";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

AdmissionDecision AdmissionController::offer(const std::string& tenant,
                                             std::size_t estimated_bytes) {
  ++stats_.offered;
  const auto shed = [&](ShedReason reason, std::size_t backlog) {
    AdmissionDecision d;
    d.admitted = false;
    d.reason = reason;
    d.retry_after_ms = retry_after_for(backlog);
    switch (reason) {
      case ShedReason::kTenantQueueFull: ++stats_.shed_tenant_queue; break;
      case ShedReason::kGlobalQueueFull: ++stats_.shed_global_queue; break;
      case ShedReason::kByteBudget: ++stats_.shed_byte_budget; break;
      case ShedReason::kAdmitted: break;
    }
    return d;
  };

  const std::size_t tenant_depth = queued(tenant);
  if (config_.per_tenant_queue_limit > 0 &&
      tenant_depth >= config_.per_tenant_queue_limit) {
    return shed(ShedReason::kTenantQueueFull, tenant_depth);
  }
  if (config_.global_queue_limit > 0 &&
      stats_.queued >= config_.global_queue_limit) {
    return shed(ShedReason::kGlobalQueueFull, stats_.queued);
  }
  if (config_.queued_bytes_budget > 0 &&
      stats_.queued_bytes + estimated_bytes > config_.queued_bytes_budget) {
    return shed(ShedReason::kByteBudget, stats_.queued);
  }

  ++stats_.admitted;
  ++per_tenant_[tenant];
  ++stats_.queued;
  stats_.queued_bytes += estimated_bytes;
  stats_.max_queued = std::max(stats_.max_queued, stats_.queued);
  stats_.max_queued_bytes = std::max(stats_.max_queued_bytes, stats_.queued_bytes);
  return AdmissionDecision{};
}

double AdmissionController::retry_after_for(std::size_t backlog) const {
  // Clamp to the floor: a hint at an empty queue (byte-budget sheds can
  // fire with backlog 0, and misconfigured floors can be negative) must
  // still hand the client a usable, non-zero backoff.
  double hint = std::max(
      config_.retry_after_floor_ms,
      config_.retry_after_floor_ms +
          config_.retry_after_per_queued_ms * static_cast<double>(backlog));
  return hint < 0.0 ? 0.0 : hint;
}

void AdmissionController::release(const std::string& tenant,
                                  std::size_t estimated_bytes) {
  const auto it = per_tenant_.find(tenant);
  if (it != per_tenant_.end() && it->second > 0) --it->second;
  if (stats_.queued > 0) --stats_.queued;
  stats_.queued_bytes -= std::min(stats_.queued_bytes, estimated_bytes);
}

std::size_t AdmissionController::queued(const std::string& tenant) const {
  const auto it = per_tenant_.find(tenant);
  return it == per_tenant_.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// DeficitRoundRobin
// ---------------------------------------------------------------------------

DeficitRoundRobin::DeficitRoundRobin(DrrConfig config) : config_(config) {}

void DeficitRoundRobin::set_weight(const std::string& tenant, double weight) {
  weights_[tenant] = std::max(weight, 1e-6);
}

double DeficitRoundRobin::weight(const std::string& tenant) const {
  const auto it = weights_.find(tenant);
  return it == weights_.end() ? 1.0 : it->second;
}

void DeficitRoundRobin::activate(const std::string& tenant) {
  if (active(tenant)) return;
  ring_.push_back(tenant);
  deficits_.emplace(tenant, 0.0);
}

void DeficitRoundRobin::deactivate(const std::string& tenant) {
  const auto it = std::find(ring_.begin(), ring_.end(), tenant);
  if (it == ring_.end()) return;
  const auto idx = static_cast<std::size_t>(it - ring_.begin());
  ring_.erase(it);
  // An idle tenant forfeits its credit: fairness is over backlogged tenants.
  deficits_.erase(tenant);
  if (idx < cursor_) --cursor_;
  if (cursor_ >= ring_.size()) cursor_ = 0;
}

bool DeficitRoundRobin::active(const std::string& tenant) const {
  return std::find(ring_.begin(), ring_.end(), tenant) != ring_.end();
}

std::string DeficitRoundRobin::pick() {
  if (ring_.empty()) return {};
  // Deficits are bounded below by one stage's overdraft, so a bounded
  // number of quantum top-ups always surfaces a serviceable tenant; the cap
  // is a safety net against degenerate weight/quantum choices.
  constexpr std::size_t kMaxTopups = 1u << 20;
  for (std::size_t round = 0; round < kMaxTopups; ++round) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      const std::size_t idx = (cursor_ + i) % ring_.size();
      if (deficits_[ring_[idx]] >= 0.0) {
        cursor_ = idx;  // keep serving this tenant while its credit lasts
        return ring_[idx];
      }
    }
    // Everyone is in debt: a service round is over. Rotate past the
    // last-served tenant before extending credit, so the new round starts
    // with its successor (plain round robin under equal weights) instead of
    // re-serving whoever happened to run last.
    cursor_ = (cursor_ + 1) % ring_.size();
    for (const std::string& t : ring_) {
      deficits_[t] += config_.quantum_ms * weight(t);
    }
  }
  return ring_[cursor_ % ring_.size()];
}

void DeficitRoundRobin::charge(const std::string& tenant, double cost_ms) {
  const auto it = deficits_.find(tenant);
  if (it != deficits_.end()) it->second -= cost_ms;
}

double DeficitRoundRobin::deficit(const std::string& tenant) const {
  const auto it = deficits_.find(tenant);
  return it == deficits_.end() ? 0.0 : it->second;
}

}  // namespace nvo::services
