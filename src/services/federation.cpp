#include "services/federation.hpp"

#include <algorithm>
#include <cmath>

#include <memory>

#include "common/strings.hpp"
#include "services/cone_search.hpp"
#include "services/sia.hpp"
#include "sky/spatial_index.hpp"
#include "votable/table_ops.hpp"

namespace nvo::services {

namespace {

/// All-cluster concatenation of a per-cluster catalog, built ONCE at
/// federation registration and shared (immutably) by the cone handlers —
/// the old per-request supplier re-derived and re-stacked every cluster's
/// table on every query.
std::shared_ptr<const votable::Table> combined_catalog(
    const sim::Universe& universe,
    votable::Table (sim::Universe::*catalog)(const sim::Cluster&) const) {
  std::vector<votable::Table> parts;
  parts.reserve(universe.clusters().size());
  for (const sim::Cluster& c : universe.clusters()) {
    parts.push_back((universe.*catalog)(c));
  }
  auto stacked = votable::vstack_all(std::move(parts));
  votable::Table out = stacked.ok() ? std::move(stacked.value()) : votable::Table();
  out.name = "ALL_CLUSTERS";
  return std::make_shared<const votable::Table>(std::move(out));
}

/// All-sky index over every galaxy of the universe: the id returned by a
/// spatial query maps back to (cluster, galaxy). Built once at federation
/// registration and shared by the positional handlers — the survey-scale
/// access structure a production archive needs (cf. the NVO's HTM).
struct GalaxyIndex {
  struct Ref {
    const sim::Cluster* cluster;
    const sim::GalaxyTruth* galaxy;
  };
  std::vector<Ref> refs;
  std::unique_ptr<sky::SpatialIndex> index;

  explicit GalaxyIndex(const sim::Universe& universe) {
    std::vector<sky::Equatorial> positions;
    for (const sim::Cluster& c : universe.clusters()) {
      for (const sim::GalaxyTruth& g : c.galaxies) {
        refs.push_back({&c, &g});
        positions.push_back(g.position);
      }
    }
    index = std::make_unique<sky::SpatialIndex>(std::move(positions), 720);
  }
};

/// Finds the (cluster, galaxy) nearest a position, within `tol_deg`.
struct GalaxyHit {
  const sim::Cluster* cluster = nullptr;
  const sim::GalaxyTruth* galaxy = nullptr;
};
GalaxyHit nearest_galaxy(const GalaxyIndex& gi, const sky::Equatorial& pos,
                         double tol_deg) {
  GalaxyHit best;
  const std::size_t id = gi.index->nearest(pos, tol_deg);
  if (id != sky::SpatialIndex::npos) {
    best.cluster = gi.refs[id].cluster;
    best.galaxy = gi.refs[id].galaxy;
  }
  return best;
}

/// SIA finder over per-cluster field images.
SiaFinder make_field_finder(const sim::Universe& universe, const std::string& title,
                            const std::string& image_base, int image_pix,
                            double pixel_scale_arcsec) {
  return [&universe, title, image_base, image_pix,
          pixel_scale_arcsec](const sky::Equatorial& pos, double size_deg) {
    std::vector<SiaRecord> out;
    const double field_deg = image_pix * pixel_scale_arcsec / sky::kArcsecPerDeg;
    for (const sim::Cluster& c : universe.clusters()) {
      const double sep = sky::angular_separation_deg(c.center(), pos);
      if (sep > size_deg / 2.0 + field_deg / 2.0) continue;
      SiaRecord r;
      r.title = title + " " + c.name();
      r.center = c.center();
      r.size_deg = field_deg;
      r.access_url = format("%s?CLUSTER=%s", image_base.c_str(), c.name().c_str());
      r.estimated_bytes =
          static_cast<std::size_t>(image_pix) * image_pix * 4 + 2880 * 2;
      out.push_back(std::move(r));
    }
    return out;
  };
}

}  // namespace

const std::vector<std::string>& Federation::archive_hosts() {
  static const std::vector<std::string> hosts = {
      kChandraHost, kHeasarcHost, kIpacHost, kCadcHost, kMastHost};
  return hosts;
}

Federation register_federation(HttpFabric& fabric, const sim::Universe& universe,
                               const FederationOptions& options) {
  Federation fed;
  const sim::Universe* u = &universe;
  // Shared by the positional handlers below (captured by value in their
  // closures, so it outlives this function).
  auto galaxy_index = std::make_shared<const GalaxyIndex>(universe);

  // ---- Chandra Data Archive: high-resolution X-ray SIA ----
  {
    const std::string host = Federation::kChandraHost;
    const std::string image_base = "http://" + host + "/cda/image";
    fabric.route(host, "/cda/sia",
                 make_sia_query_handler(
                     make_field_finder(universe, "Chandra ACIS", image_base, 256, 2.0)),
                 EndpointModel{70.0, 6.0, 0.0, true});
    fabric.route(host, "/cda/image",
                 make_image_handler([u](const Url& url) -> Expected<image::FitsFile> {
                   const auto name = url.param("CLUSTER");
                   if (!name) return Error(ErrorCode::kInvalidArgument, "no CLUSTER");
                   const sim::Cluster* c = u->find_cluster(*name);
                   if (!c) return Error(ErrorCode::kNotFound, "cluster " + *name);
                   return u->xray_field(*c, 256, 2.0);
                 }),
                 EndpointModel{70.0, 6.0, 0.0, true});
    fed.chandra_sia = "http://" + host + "/cda/sia";
  }

  // ---- HEASARC: ROSAT all-sky X-ray SIA (coarser sampling) ----
  {
    const std::string host = Federation::kHeasarcHost;
    const std::string image_base = "http://" + host + "/rosat/image";
    fabric.route(host, "/rosat/sia",
                 make_sia_query_handler(
                     make_field_finder(universe, "ROSAT PSPC", image_base, 128, 8.0)),
                 EndpointModel{60.0, 10.0, 0.0, true});
    fabric.route(host, "/rosat/image",
                 make_image_handler([u](const Url& url) -> Expected<image::FitsFile> {
                   const auto name = url.param("CLUSTER");
                   if (!name) return Error(ErrorCode::kInvalidArgument, "no CLUSTER");
                   const sim::Cluster* c = u->find_cluster(*name);
                   if (!c) return Error(ErrorCode::kNotFound, "cluster " + *name);
                   return u->xray_field(*c, 128, 8.0);
                 }),
                 EndpointModel{60.0, 10.0, 0.0, true});
    fed.rosat_sia = "http://" + host + "/rosat/sia";
  }

  // ---- IPAC: NED cone search ----
  {
    const std::string host = Federation::kIpacHost;
    fabric.route(host, "/ned/cone",
                 make_indexed_cone_search_handler(
                     combined_catalog(universe, &sim::Universe::ned_catalog)),
                 EndpointModel{90.0, 8.0, 0.0, true});
    fed.ned_cone = "http://" + host + "/ned/cone";
  }

  // ---- CADC: CNOC survey, SIA + cone ----
  {
    const std::string host = Federation::kCadcHost;
    const std::string image_base = "http://" + host + "/cnoc/image";
    fabric.route(host, "/cnoc/sia",
                 make_sia_query_handler(
                     make_field_finder(universe, "CNOC field", image_base, 512, 2.0)),
                 EndpointModel{110.0, 5.0, 0.0, true});
    fabric.route(host, "/cnoc/image",
                 make_image_handler([u](const Url& url) -> Expected<image::FitsFile> {
                   const auto name = url.param("CLUSTER");
                   if (!name) return Error(ErrorCode::kInvalidArgument, "no CLUSTER");
                   const sim::Cluster* c = u->find_cluster(*name);
                   if (!c) return Error(ErrorCode::kNotFound, "cluster " + *name);
                   return u->optical_field(*c, 512, 2.0);
                 }),
                 EndpointModel{110.0, 5.0, 0.0, true});
    fabric.route(host, "/cnoc/cone",
                 make_indexed_cone_search_handler(
                     combined_catalog(universe, &sim::Universe::cnoc_catalog)),
                 EndpointModel{110.0, 5.0, 0.0, true});
    fed.cnoc_sia = "http://" + host + "/cnoc/sia";
    fed.cnoc_cone = "http://" + host + "/cnoc/cone";
  }

  // ---- MAST: DSS fields + the dynamic galaxy cutout service ----
  {
    const std::string host = Federation::kMastHost;
    const std::string image_base = "http://" + host + "/dss/image";
    const Handler dss_sia_handler = make_sia_query_handler(
        make_field_finder(universe, "DSS", image_base, 512, 2.0));
    const Handler dss_image_handler =
        make_image_handler([u](const Url& url) -> Expected<image::FitsFile> {
          const auto name = url.param("CLUSTER");
          if (!name) return Error(ErrorCode::kInvalidArgument, "no CLUSTER");
          const sim::Cluster* c = u->find_cluster(*name);
          if (!c) return Error(ErrorCode::kNotFound, "cluster " + *name);
          return u->optical_field(*c, 512, 2.0);
        });

    // Cutout SIA: one record per catalogued galaxy inside the query cone.
    // The per-record acref points at the dynamic cutout endpoint — and a
    // wide cone returns every member in one query, which is exactly the
    // batched mode the paper says would speed things up "tremendously".
    const std::string cutout_base = "http://" + host + "/cutout/image";
    const Handler cutout_sia_handler = make_sia_query_handler(
        [galaxy_index, cutout_base](const sky::Equatorial& pos, double size_deg) {
          std::vector<SiaRecord> out;
          const double cutout_deg = 64.0 / sky::kArcsecPerDeg;  // 64 pix at 1"/pix
          for (const std::size_t id :
               galaxy_index->index->query_cone(pos, size_deg / 2.0)) {
            const sim::GalaxyTruth& g = *galaxy_index->refs[id].galaxy;
            SiaRecord r;
            r.title = g.id;
            r.center = g.position;
            r.size_deg = cutout_deg;
            r.access_url =
                format("%s?POS=%.6f,%.6f&SIZE=%.6f", cutout_base.c_str(),
                       g.position.ra_deg, g.position.dec_deg, cutout_deg);
            r.estimated_bytes = 64 * 64 * 4 + 2880 * 2;
            out.push_back(std::move(r));
          }
          return out;
        });
    const Handler cutout_image_handler = make_image_handler(
        [u, galaxy_index](const Url& url) -> Expected<image::FitsFile> {
          const auto pos_text = url.param("POS");
          const auto size = url.param_double("SIZE");
          if (!pos_text || !size) {
            return Error(ErrorCode::kInvalidArgument, "cutout needs POS and SIZE");
          }
          const auto parts = split(*pos_text, ',');
          const auto ra = parts.size() == 2 ? parse_double(parts[0]) : std::nullopt;
          const auto dec = parts.size() == 2 ? parse_double(parts[1]) : std::nullopt;
          if (!ra || !dec) return Error(ErrorCode::kInvalidArgument, "bad POS");
          const sky::Equatorial pos{*ra, *dec};
          const int pix = std::clamp(
              static_cast<int>(std::lround(*size * sky::kArcsecPerDeg)), 32, 128);
          const GalaxyHit hit =
              nearest_galaxy(*galaxy_index, pos, 30.0 / sky::kArcsecPerDeg);
          if (!hit.galaxy) {
            return Error(ErrorCode::kNotFound,
                         "no catalogued galaxy near " + pos.to_string());
          }
          return u->galaxy_cutout(*hit.cluster, *hit.galaxy, pix);
        });

    fabric.route(host, "/dss/sia", dss_sia_handler, EndpointModel{80.0, 4.0, 0.0, true});
    fabric.route(host, "/dss/image", dss_image_handler,
                 EndpointModel{80.0, 4.0, 0.0, true});
    fabric.route(host, "/cutout/sia", cutout_sia_handler,
                 EndpointModel{80.0, 4.0, 0.0, true});
    fabric.route(host, "/cutout/image", cutout_image_handler,
                 EndpointModel{80.0, 4.0, 0.0, true});

    fed.dss_sia = "http://" + host + "/dss/sia";
    fed.cutout_sia = "http://" + host + "/cutout/sia";

    // Failover mirror: the same DSS + cutout services under a second host
    // (a touch slower, as a farther mirror would be). Never contacted unless
    // a ResilientClient fails over to it, so registering it changes nothing
    // in a fault-free run.
    if (options.with_mirror && !options.mirror_host.empty()) {
      const EndpointModel mirror_model{120.0, 3.0, 0.0, true};
      fabric.route(options.mirror_host, "/dss/sia", dss_sia_handler, mirror_model);
      fabric.route(options.mirror_host, "/dss/image", dss_image_handler, mirror_model);
      fabric.route(options.mirror_host, "/cutout/sia", cutout_sia_handler,
                   mirror_model);
      fabric.route(options.mirror_host, "/cutout/image", cutout_image_handler,
                   mirror_model);
      fed.mirror_host = options.mirror_host;
    }
  }

  return fed;
}

}  // namespace nvo::services
