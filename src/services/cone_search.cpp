#include "services/cone_search.hpp"

#include "common/strings.hpp"
#include "votable/table_ops.hpp"
#include "votable/votable_io.hpp"

namespace nvo::services {

Handler make_cone_search_handler(std::function<votable::Table()> catalog_supplier) {
  return [supplier = std::move(catalog_supplier)](const Url& url)
             -> Expected<HttpResponse> {
    const auto ra = url.param_double("RA");
    const auto dec = url.param_double("DEC");
    const auto sr = url.param_double("SR");
    if (!ra || !dec || !sr || *sr < 0.0) {
      HttpResponse bad = HttpResponse::text("missing or invalid RA/DEC/SR");
      bad.status = 400;
      return bad;
    }
    const votable::Table catalog = supplier();
    const auto ra_col = catalog.column_index("ra");
    const auto dec_col = catalog.column_index("dec");
    if (!ra_col || !dec_col) {
      HttpResponse bad = HttpResponse::text("catalog lacks ra/dec columns");
      bad.status = 500;
      return bad;
    }
    const sky::Equatorial center{*ra, *dec};
    const votable::Table hits = votable::select(catalog, [&](const votable::Row& row) {
      const auto r = row[*ra_col].as_number();
      const auto d = row[*dec_col].as_number();
      if (!r || !d) return false;
      return sky::within_cone(center, *sr, sky::Equatorial{*r, *d});
    });
    return HttpResponse::text(votable::to_votable_xml(hits), "text/xml;content=x-votable");
  };
}

Expected<votable::Table> cone_search(HttpChannel& channel, const std::string& base_url,
                                     const sky::Equatorial& center, double radius_deg) {
  const std::string url =
      format("%s?RA=%.6f&DEC=%.6f&SR=%.6f", base_url.c_str(), center.ra_deg,
             center.dec_deg, radius_deg);
  auto response = channel.get(url);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kServiceUnavailable,
                 format("cone search returned %d: %s", response->status,
                        response->body_text().c_str()));
  }
  return votable::from_votable_xml(response->body_text());
}

}  // namespace nvo::services
