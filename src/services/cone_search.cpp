#include "services/cone_search.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "common/strings.hpp"
#include "sky/spatial_index.hpp"
#include "votable/table_ops.hpp"
#include "votable/votable_io.hpp"

namespace nvo::services {

namespace {

/// Parses the protocol's RA/DEC/SR query triple; nullopt -> caller answers
/// with the 400 convention.
struct ConeParams {
  sky::Equatorial center;
  double radius_deg;
};
std::optional<ConeParams> parse_cone_params(const Url& url) {
  const auto ra = url.param_double("RA");
  const auto dec = url.param_double("DEC");
  const auto sr = url.param_double("SR");
  if (!ra || !dec || !sr || *sr < 0.0) return std::nullopt;
  return ConeParams{sky::Equatorial{*ra, *dec}, *sr};
}

}  // namespace

Handler make_cone_search_handler(std::function<votable::Table()> catalog_supplier) {
  return [supplier = std::move(catalog_supplier)](const Url& url)
             -> Expected<HttpResponse> {
    const auto params = parse_cone_params(url);
    if (!params) {
      HttpResponse bad = HttpResponse::text("missing or invalid RA/DEC/SR");
      bad.status = 400;
      return bad;
    }
    const votable::Table catalog = supplier();
    const auto ra_col = catalog.column_index("ra");
    const auto dec_col = catalog.column_index("dec");
    if (!ra_col || !dec_col) {
      HttpResponse bad = HttpResponse::text("catalog lacks ra/dec columns");
      bad.status = 500;
      return bad;
    }
    const sky::Equatorial center = params->center;
    const double sr = params->radius_deg;
    const votable::Table hits = votable::select(catalog, [&](const votable::Row& row) {
      const auto r = row[*ra_col].as_number();
      const auto d = row[*dec_col].as_number();
      if (!r || !d) return false;
      return sky::within_cone(center, sr, sky::Equatorial{*r, *d});
    });
    return HttpResponse::text(votable::to_votable_xml(hits), "text/xml;content=x-votable");
  };
}

Handler make_indexed_cone_search_handler(
    std::shared_ptr<const votable::Table> catalog) {
  // Rows with a null/unparseable position are excluded from the index, just
  // as the linear predicate rejects them; `row_of` maps index ids (assigned
  // in row order, returned ascending by query_cone) back to catalog rows,
  // so hit order equals the linear scan's row order.
  struct Indexed {
    std::shared_ptr<const votable::Table> catalog;
    std::vector<std::size_t> row_of;
    std::unique_ptr<sky::SpatialIndex> index;  // null when ra/dec are missing
  };
  auto ix = std::make_shared<Indexed>();
  ix->catalog = std::move(catalog);
  const auto ra_col = ix->catalog->column_index("ra");
  const auto dec_col = ix->catalog->column_index("dec");
  if (ra_col && dec_col) {
    std::vector<sky::Equatorial> positions;
    positions.reserve(ix->catalog->num_rows());
    for (std::size_t r = 0; r < ix->catalog->num_rows(); ++r) {
      const auto ra = ix->catalog->row(r)[*ra_col].as_number();
      const auto dec = ix->catalog->row(r)[*dec_col].as_number();
      if (!ra || !dec) continue;
      ix->row_of.push_back(r);
      positions.push_back(sky::Equatorial{*ra, *dec});
    }
    ix->index = std::make_unique<sky::SpatialIndex>(std::move(positions), 720);
  }
  return [ix](const Url& url) -> Expected<HttpResponse> {
    const auto params = parse_cone_params(url);
    if (!params) {
      HttpResponse bad = HttpResponse::text("missing or invalid RA/DEC/SR");
      bad.status = 400;
      return bad;
    }
    if (!ix->index) {
      HttpResponse bad = HttpResponse::text("catalog lacks ra/dec columns");
      bad.status = 500;
      return bad;
    }
    votable::Table hits(ix->catalog->fields());
    hits.name = ix->catalog->name;
    hits.description = ix->catalog->description;
    for (const std::size_t id :
         ix->index->query_cone(params->center, params->radius_deg)) {
      (void)hits.append_row(ix->catalog->row(ix->row_of[id]));
    }
    return HttpResponse::text(votable::to_votable_xml(hits), "text/xml;content=x-votable");
  };
}

Expected<votable::Table> cone_search(HttpChannel& channel, const std::string& base_url,
                                     const sky::Equatorial& center, double radius_deg) {
  const std::string url =
      format("%s?RA=%.6f&DEC=%.6f&SR=%.6f", base_url.c_str(), center.ra_deg,
             center.dec_deg, radius_deg);
  auto response = channel.get(url);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kServiceUnavailable,
                 format("cone search returned %d: %s", response->status,
                        response->body_text().c_str()));
  }
  return votable::from_votable_xml(response->body_text());
}

}  // namespace nvo::services
