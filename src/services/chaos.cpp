#include "services/chaos.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace nvo::services {

ChaosSchedule& ChaosSchedule::add(FaultWindow window) {
  windows_.push_back(std::move(window));
  return *this;
}

ChaosSchedule& ChaosSchedule::outage(std::string host, double start_ms,
                                     double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kOutage;
  w.host = std::move(host);
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

ChaosSchedule& ChaosSchedule::flaky(std::string host, double rate, double start_ms,
                                    double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kFlaky;
  w.host = std::move(host);
  w.failure_rate = rate;
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

ChaosSchedule& ChaosSchedule::brownout(std::string host, double bandwidth_factor,
                                       double extra_latency_ms, double start_ms,
                                       double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kBrownout;
  w.host = std::move(host);
  w.bandwidth_factor = bandwidth_factor;
  w.extra_latency_ms = extra_latency_ms;
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

EndpointModel ChaosSchedule::apply(const Url& url, EndpointModel model,
                                   double now_ms) const {
  for (const FaultWindow& w : windows_) {
    if (now_ms < w.start_ms || now_ms >= w.end_ms) continue;
    if (!w.host.empty() && w.host != url.host) continue;
    if (!w.path_prefix.empty() && !starts_with(url.path, w.path_prefix)) continue;
    switch (w.kind) {
      case FaultWindow::Kind::kOutage:
        model.up = false;
        break;
      case FaultWindow::Kind::kFlaky:
        model.failure_rate = std::max(model.failure_rate, w.failure_rate);
        break;
      case FaultWindow::Kind::kBrownout:
        model.bandwidth_mbps *= w.bandwidth_factor;
        model.latency_ms += w.extra_latency_ms;
        break;
    }
  }
  return model;
}

void install_chaos(HttpFabric& fabric, ChaosSchedule schedule) {
  if (schedule.empty()) {
    fabric.set_fault_injector(nullptr);
    return;
  }
  fabric.set_fault_injector(
      [schedule = std::move(schedule)](
          const Url& url, const EndpointModel& model,
          double now_ms) -> std::optional<EndpointModel> {
        return schedule.apply(url, model, now_ms);
      });
}

}  // namespace nvo::services
