#include "services/chaos.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace nvo::services {

ChaosSchedule& ChaosSchedule::add(FaultWindow window) {
  windows_.push_back(std::move(window));
  return *this;
}

ChaosSchedule& ChaosSchedule::outage(std::string host, double start_ms,
                                     double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kOutage;
  w.host = std::move(host);
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

ChaosSchedule& ChaosSchedule::flaky(std::string host, double rate, double start_ms,
                                    double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kFlaky;
  w.host = std::move(host);
  w.failure_rate = rate;
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

ChaosSchedule& ChaosSchedule::brownout(std::string host, double bandwidth_factor,
                                       double extra_latency_ms, double start_ms,
                                       double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kBrownout;
  w.host = std::move(host);
  w.bandwidth_factor = bandwidth_factor;
  w.extra_latency_ms = extra_latency_ms;
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

ChaosSchedule& ChaosSchedule::bit_flip(std::string host, double rate,
                                       double start_ms, double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kBitFlip;
  w.host = std::move(host);
  w.corruption_rate = rate;
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

ChaosSchedule& ChaosSchedule::truncate(std::string host, double rate,
                                       double start_ms, double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kTruncate;
  w.host = std::move(host);
  w.corruption_rate = rate;
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

ChaosSchedule& ChaosSchedule::stale_replica(std::string host, double rate,
                                            double start_ms, double end_ms) {
  FaultWindow w;
  w.kind = FaultWindow::Kind::kStaleReplica;
  w.host = std::move(host);
  w.corruption_rate = rate;
  w.start_ms = start_ms;
  w.end_ms = end_ms;
  return add(std::move(w));
}

bool ChaosSchedule::has_corruption() const {
  for (const FaultWindow& w : windows_) {
    if (w.is_corruption()) return true;
  }
  return false;
}

EndpointModel ChaosSchedule::apply(const Url& url, EndpointModel model,
                                   double now_ms) const {
  for (const FaultWindow& w : windows_) {
    if (now_ms < w.start_ms || now_ms >= w.end_ms) continue;
    if (!w.host.empty() && w.host != url.host) continue;
    if (!w.path_prefix.empty() && !starts_with(url.path, w.path_prefix)) continue;
    switch (w.kind) {
      case FaultWindow::Kind::kOutage:
        model.up = false;
        break;
      case FaultWindow::Kind::kFlaky:
        model.failure_rate = std::max(model.failure_rate, w.failure_rate);
        break;
      case FaultWindow::Kind::kBrownout:
        model.bandwidth_mbps *= w.bandwidth_factor;
        model.latency_ms += w.extra_latency_ms;
        break;
      case FaultWindow::Kind::kBitFlip:
      case FaultWindow::Kind::kTruncate:
      case FaultWindow::Kind::kStaleReplica:
        break;  // corruption acts on the response, not the endpoint model
    }
  }
  return model;
}

bool ChaosSchedule::tamper(const Url& url, HttpResponse& response, double now_ms,
                           Rng& rng, StaleStore& stale) const {
  bool matched_stale_host = false;
  bool corrupted = false;
  // Snapshot the clean response up front: if this request is both recorded
  // (for future stale replays) and corrupted, the *clean* bytes are what a
  // stale replica would later serve.
  const std::vector<std::uint8_t> clean_body = response.body;
  const std::uint64_t clean_digest = response.digest;
  const std::string clean_type = response.content_type;

  for (const FaultWindow& w : windows_) {
    if (!w.is_corruption()) continue;
    if (!w.host.empty() && w.host != url.host) continue;
    if (!w.path_prefix.empty() && !starts_with(url.path, w.path_prefix)) continue;
    if (w.kind == FaultWindow::Kind::kStaleReplica) matched_stale_host = true;
    if (corrupted) continue;  // at most one corruption per response
    if (now_ms < w.start_ms || now_ms >= w.end_ms) continue;
    if (w.corruption_rate <= 0.0 || !rng.bernoulli(w.corruption_rate)) continue;
    switch (w.kind) {
      case FaultWindow::Kind::kBitFlip: {
        if (response.body.empty()) break;
        const std::uint64_t bit =
            rng.uniform_index(static_cast<std::uint64_t>(response.body.size()) * 8);
        response.body[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        corrupted = true;
        break;
      }
      case FaultWindow::Kind::kTruncate: {
        if (response.body.empty()) break;
        response.body.resize(static_cast<std::size_t>(
            rng.uniform_index(static_cast<std::uint64_t>(response.body.size()))));
        corrupted = true;
        break;
      }
      case FaultWindow::Kind::kStaleReplica: {
        const auto it = stale.find(url.host);
        // Replay only when the remembered response is genuinely different
        // content: replaying a response onto its own URL is not corruption.
        if (it != stale.end() && it->second.digest != response.digest) {
          response.body = it->second.body;
          response.content_type = it->second.content_type;
          response.digest = it->second.digest;  // valid — for the *old* URL
          corrupted = true;
        }
        break;
      }
      default:
        break;
    }
  }

  if (matched_stale_host) {
    stale[url.host] = StaleEntry{clean_body, clean_type, clean_digest};
  }
  return corrupted;
}

void install_chaos(HttpFabric& fabric, ChaosSchedule schedule) {
  if (schedule.windows().empty()) {
    fabric.set_fault_injector(nullptr);
    fabric.set_response_tamperer(nullptr);
    return;
  }
  if (schedule.has_corruption()) {
    auto stale = std::make_shared<ChaosSchedule::StaleStore>();
    fabric.set_response_tamperer(
        [schedule, stale](const Url& url, HttpResponse& response, double now_ms,
                          Rng& rng) {
          return schedule.tamper(url, response, now_ms, rng, *stale);
        });
  } else {
    fabric.set_response_tamperer(nullptr);
  }
  fabric.set_fault_injector(
      [schedule = std::move(schedule)](
          const Url& url, const EndpointModel& model,
          double now_ms) -> std::optional<EndpointModel> {
        return schedule.apply(url, model, now_ms);
      });
}

}  // namespace nvo::services
