#include "services/registry.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace nvo::services {

const char* to_string(Capability c) {
  switch (c) {
    case Capability::kConeSearch:
      return "cone-search";
    case Capability::kSimpleImageAccess:
      return "sia";
    case Capability::kCutout:
      return "cutout";
    case Capability::kCompute:
      return "compute";
  }
  return "?";
}

bool ServiceRecord::covers(const sky::Equatorial& pos) const {
  if (coverage_radius_deg < 0.0) return true;  // all-sky
  return sky::within_cone(coverage_center, coverage_radius_deg, pos);
}

Status Registry::add(ServiceRecord record) {
  for (const ServiceRecord& r : records_) {
    if (r.identifier == record.identifier) {
      return Error(ErrorCode::kAlreadyExists, record.identifier);
    }
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

std::vector<ServiceRecord> Registry::find_by_capability(Capability c) const {
  std::vector<ServiceRecord> out;
  for (const ServiceRecord& r : records_) {
    if (r.capability == c) out.push_back(r);
  }
  return out;
}

std::vector<ServiceRecord> Registry::discover(Capability c, const sky::Equatorial& pos,
                                              const std::string& waveband) const {
  std::vector<ServiceRecord> out;
  for (const ServiceRecord& r : records_) {
    if (r.capability != c) continue;
    if (!r.covers(pos)) continue;
    if (!waveband.empty() && r.waveband != waveband) continue;
    out.push_back(r);
  }
  return out;
}

std::vector<ServiceRecord> Registry::search_keyword(const std::string& keyword) const {
  const std::string needle = to_lower(keyword);
  std::vector<ServiceRecord> out;
  for (const ServiceRecord& r : records_) {
    const std::string haystack = to_lower(r.title + " " + r.publisher);
    if (haystack.find(needle) != std::string::npos) out.push_back(r);
  }
  return out;
}

Expected<ServiceRecord> Registry::resolve(const std::string& identifier) const {
  for (const ServiceRecord& r : records_) {
    if (r.identifier == identifier) return r;
  }
  return Error(ErrorCode::kNotFound, "no service " + identifier);
}

}  // namespace nvo::services
