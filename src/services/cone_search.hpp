// The NVO Cone Search protocol (§3.1): "an interface for searching and
// retrieving records from an astronomical catalog over the web" keyed on a
// sky position and radius. Query parameters RA, DEC, SR (decimal degrees);
// response is a VOTable of the catalog rows within the cone.
#pragma once

#include <functional>
#include <memory>

#include "common/expected.hpp"
#include "services/http.hpp"
#include "sky/coords.hpp"
#include "votable/table.hpp"

namespace nvo::services {

/// Server side: wraps a catalog supplier into a Cone Search endpoint.
/// The supplied table must have "ra" and "dec" double columns in degrees;
/// rows outside the requested cone are filtered out. Missing/invalid RA,
/// DEC, or SR parameters produce a 400 response, per the protocol's error
/// convention.
Handler make_cone_search_handler(std::function<votable::Table()> catalog_supplier);

/// Server side, indexed: takes the catalog built ONCE up front and answers
/// every request from a declination-band spatial index instead of
/// re-materializing the table and scanning it linearly per query. The index
/// verifies candidates with the same `<= radius` separation predicate as
/// `within_cone` and returns hits in ascending row order, so responses are
/// byte-identical to the linear handler's.
Handler make_indexed_cone_search_handler(
    std::shared_ptr<const votable::Table> catalog);

/// Client side: issues the GET and parses the VOTable response. Accepts any
/// HttpChannel — the raw fabric or a ResilientClient for retry/breaker
/// tolerance.
Expected<votable::Table> cone_search(HttpChannel& channel, const std::string& base_url,
                                     const sky::Equatorial& center, double radius_deg);

}  // namespace nvo::services
