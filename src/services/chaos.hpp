// Deterministic fault injection for the HTTP fabric. The paper's campaign
// ran against archives that were "occasionally down"; this harness scripts
// exactly that against the fabric's simulated clock: outage windows (an
// archive is hard-down for a stretch of simulated time), flaky periods
// (elevated 503 rates), and bandwidth brownouts (throttled transfer plus
// extra latency, which the retry layer's per-attempt timeout converts into
// retries). Because windows are keyed on simulated milliseconds and every
// stochastic draw is seeded, two identically-seeded chaos campaigns are
// bit-identical.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "services/http.hpp"

namespace nvo::services {

/// One scripted fault: a model override active on matching requests inside
/// [start_ms, end_ms) of the fabric's simulated clock. The corruption kinds
/// (kBitFlip, kTruncate, kStaleReplica) do not touch the endpoint model —
/// the request "succeeds" — they tamper with the already-signed response so
/// the integrity layer is the only thing standing between the bad bytes and
/// the morphology kernel.
struct FaultWindow {
  enum class Kind { kOutage, kFlaky, kBrownout, kBitFlip, kTruncate, kStaleReplica };
  Kind kind = Kind::kOutage;
  std::string host;         ///< exact host; empty matches every host
  std::string path_prefix;  ///< path prefix; empty matches every path
  double start_ms = 0.0;
  double end_ms = std::numeric_limits<double>::infinity();
  double failure_rate = 0.0;      ///< kFlaky: per-request 503 probability
  double bandwidth_factor = 1.0;  ///< kBrownout: multiplies bandwidth
  double extra_latency_ms = 0.0;  ///< kBrownout: added per-request latency
  double corruption_rate = 0.0;   ///< corruption kinds: per-request probability

  bool is_corruption() const {
    return kind == Kind::kBitFlip || kind == Kind::kTruncate ||
           kind == Kind::kStaleReplica;
  }
};

/// An ordered script of fault windows; overlapping windows compose (an
/// outage beats a flaky period on the same endpoint).
class ChaosSchedule {
 public:
  ChaosSchedule& add(FaultWindow window);
  /// The archive is hard-down during [start_ms, end_ms).
  ChaosSchedule& outage(std::string host, double start_ms, double end_ms);
  /// Requests sampled to fail with `rate` during the window.
  ChaosSchedule& flaky(std::string host, double rate, double start_ms = 0.0,
                       double end_ms = std::numeric_limits<double>::infinity());
  /// Bandwidth multiplied by `bandwidth_factor` (and latency raised by
  /// `extra_latency_ms`) during the window.
  ChaosSchedule& brownout(std::string host, double bandwidth_factor,
                          double extra_latency_ms, double start_ms, double end_ms);
  /// Silent corruption: a sampled fraction of successful responses get one
  /// random bit flipped after signing.
  ChaosSchedule& bit_flip(std::string host, double rate, double start_ms = 0.0,
                          double end_ms = std::numeric_limits<double>::infinity());
  /// Silent corruption: a sampled fraction of successful responses lose a
  /// random-length tail (short read that still reports success).
  ChaosSchedule& truncate(std::string host, double rate, double start_ms = 0.0,
                          double end_ms = std::numeric_limits<double>::infinity());
  /// Silent corruption: a sampled fraction of successful responses are
  /// replaced by the *previous* response the host served — valid bytes with
  /// a valid signature, but for a different resource (a stale replica).
  ChaosSchedule& stale_replica(std::string host, double rate, double start_ms = 0.0,
                               double end_ms = std::numeric_limits<double>::infinity());

  /// Process-kill injection: abort the campaign's DAG execution after `n`
  /// total node completions (0 disables). Consumed by the compute service,
  /// not the fabric — it simulates the submit host dying mid-DAG so the
  /// checkpoint/resume path can be exercised deterministically.
  ChaosSchedule& kill_after_nodes(std::size_t n) {
    kill_after_node_completions_ = n;
    return *this;
  }
  std::size_t kill_after_node_completions() const {
    return kill_after_node_completions_;
  }

  /// Whole-pool outage: the named execution site drops off the grid at
  /// `at_s` simulated seconds into DAG execution. Consumed by the compute
  /// service (it forwards the script to DagManSim's failure model), not the
  /// HTTP fabric — site seconds and fabric milliseconds are separate clocks.
  ChaosSchedule& site_outage(std::string site, double at_s) {
    site_outage_at_s_[std::move(site)] = at_s;
    return *this;
  }
  const std::map<std::string, double>& site_outages() const {
    return site_outage_at_s_;
  }

  bool empty() const {
    return windows_.empty() && kill_after_node_completions_ == 0 &&
           site_outage_at_s_.empty();
  }
  bool has_corruption() const;
  const std::vector<FaultWindow>& windows() const { return windows_; }

  /// Applies every matching active window to `model` (corruption windows do
  /// not alter the model; they act at tamper time).
  EndpointModel apply(const Url& url, EndpointModel model, double now_ms) const;

  /// Per-host memory of the last clean response, for stale-replica replays.
  struct StaleEntry {
    std::vector<std::uint8_t> body;
    std::string content_type;
    std::uint64_t digest = 0;
  };
  using StaleStore = std::map<std::string, StaleEntry>;

  /// Applies corruption windows to an already-signed response. Draws from
  /// `rng` only for requests matched by an active corruption window (at most
  /// one corruption is applied per response). Returns true when the response
  /// was actually altered.
  bool tamper(const Url& url, HttpResponse& response, double now_ms, Rng& rng,
              StaleStore& stale) const;

 private:
  std::vector<FaultWindow> windows_;
  std::size_t kill_after_node_completions_ = 0;
  std::map<std::string, double> site_outage_at_s_;  // site -> sim second
};

/// Installs the schedule as the fabric's fault injector and — when the
/// schedule contains corruption windows — its response tamperer (replacing
/// any previous hooks). The schedule is copied into the hooks. The tamperer
/// only consumes RNG draws for requests matched by an active corruption
/// window, so a corruption-free schedule leaves request timings untouched.
void install_chaos(HttpFabric& fabric, ChaosSchedule schedule);

}  // namespace nvo::services
