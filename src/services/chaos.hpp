// Deterministic fault injection for the HTTP fabric. The paper's campaign
// ran against archives that were "occasionally down"; this harness scripts
// exactly that against the fabric's simulated clock: outage windows (an
// archive is hard-down for a stretch of simulated time), flaky periods
// (elevated 503 rates), and bandwidth brownouts (throttled transfer plus
// extra latency, which the retry layer's per-attempt timeout converts into
// retries). Because windows are keyed on simulated milliseconds and every
// stochastic draw is seeded, two identically-seeded chaos campaigns are
// bit-identical.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "services/http.hpp"

namespace nvo::services {

/// One scripted fault: a model override active on matching requests inside
/// [start_ms, end_ms) of the fabric's simulated clock.
struct FaultWindow {
  enum class Kind { kOutage, kFlaky, kBrownout };
  Kind kind = Kind::kOutage;
  std::string host;         ///< exact host; empty matches every host
  std::string path_prefix;  ///< path prefix; empty matches every path
  double start_ms = 0.0;
  double end_ms = std::numeric_limits<double>::infinity();
  double failure_rate = 0.0;      ///< kFlaky: per-request 503 probability
  double bandwidth_factor = 1.0;  ///< kBrownout: multiplies bandwidth
  double extra_latency_ms = 0.0;  ///< kBrownout: added per-request latency
};

/// An ordered script of fault windows; overlapping windows compose (an
/// outage beats a flaky period on the same endpoint).
class ChaosSchedule {
 public:
  ChaosSchedule& add(FaultWindow window);
  /// The archive is hard-down during [start_ms, end_ms).
  ChaosSchedule& outage(std::string host, double start_ms, double end_ms);
  /// Requests sampled to fail with `rate` during the window.
  ChaosSchedule& flaky(std::string host, double rate, double start_ms = 0.0,
                       double end_ms = std::numeric_limits<double>::infinity());
  /// Bandwidth multiplied by `bandwidth_factor` (and latency raised by
  /// `extra_latency_ms`) during the window.
  ChaosSchedule& brownout(std::string host, double bandwidth_factor,
                          double extra_latency_ms, double start_ms, double end_ms);

  bool empty() const { return windows_.empty(); }
  const std::vector<FaultWindow>& windows() const { return windows_; }

  /// Applies every matching active window to `model`.
  EndpointModel apply(const Url& url, EndpointModel model, double now_ms) const;

 private:
  std::vector<FaultWindow> windows_;
};

/// Installs the schedule as the fabric's fault injector (replacing any
/// previous one). The schedule is copied into the hook.
void install_chaos(HttpFabric& fabric, ChaosSchedule schedule);

}  // namespace nvo::services
