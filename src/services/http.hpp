// In-process HTTP GET fabric: the transport beneath every simulated NVO
// service. The paper's interfaces are deliberately simple — "based on HTTP
// Get operations" (§3.1) — so the fabric models exactly that: URL in, typed
// response out, with a per-endpoint performance model (connection latency,
// bandwidth, failure rate, up/down state) that reproduces the WAN behaviour
// the prototype saw: per-request overhead dominating many-small-image
// workloads, and archives occasionally being down.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/rng.hpp"
#include "obs/clock.hpp"

namespace nvo::services {

/// A parsed URL: scheme://host/path?query.
struct Url {
  std::string scheme = "http";
  std::string host;
  std::string path;                          ///< begins with '/'
  std::map<std::string, std::string> query;  ///< decoded key -> value

  std::string to_string() const;
  static Expected<Url> parse(const std::string& text);

  /// Query parameter lookup.
  std::optional<std::string> param(const std::string& key) const;
  std::optional<double> param_double(const std::string& key) const;
};

/// Percent-encodes a query value.
std::string url_encode(const std::string& s);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::vector<std::uint8_t> body;
  double elapsed_ms = 0.0;  ///< simulated wall time for this request
  /// Serve-time integrity signature: content digest of `body` bound to the
  /// canonical request URL, attached by the fabric on every successful
  /// dispatch (see services/integrity.hpp). 0 means "unsigned" (hand-built
  /// fixture responses); verification treats unsigned as trivially valid.
  std::uint64_t digest = 0;

  std::string body_text() const { return std::string(body.begin(), body.end()); }
  static HttpResponse text(std::string s, const std::string& type = "text/plain");
  static HttpResponse binary(std::vector<std::uint8_t> bytes, const std::string& type);
};

/// Endpoint handler: path + query in, response out.
using Handler = std::function<Expected<HttpResponse>(const Url&)>;

/// Performance/fault model for one endpoint.
struct EndpointModel {
  double latency_ms = 50.0;         ///< per-request setup cost (the SIA killer)
  double bandwidth_mbps = 8.0;      ///< payload transfer rate
  double failure_rate = 0.0;        ///< probability of a 503 per request
  bool up = true;                   ///< hard down switch (archive outage)
};

/// Anything a protocol client can issue GETs through: the raw fabric or a
/// resilience wrapper (ResilientClient). Cone Search / SIA clients are
/// written against this interface so callers choose the tolerance layer.
class HttpChannel {
 public:
  virtual ~HttpChannel() = default;
  virtual Expected<HttpResponse> get(const std::string& url_text) = 0;
};

/// The fabric: a routing table plus metrics and the simulated clock.
/// Thread-safe: dispatch (routing, fault sampling, jitter draws, metric
/// charging) runs under an internal lock, so a fabric shared between the
/// portal thread and the compute-service pool keeps well-defined RNG draws
/// and per-route counters. Handlers run on the calling thread while the
/// lock is held; the lock is recursive so a handler may legitimately issue
/// nested fabric requests (service-to-service calls).
class HttpFabric : public HttpChannel {
 public:
  explicit HttpFabric(std::uint64_t seed = 7);

  /// Registers `handler` for all URLs on `host` whose path begins with
  /// `path_prefix` (longest prefix wins).
  void route(const std::string& host, const std::string& path_prefix, Handler handler,
             EndpointModel model = {});

  /// Toggles an endpoint's availability (e.g. "MAST is down").
  Status set_up(const std::string& host, const std::string& path_prefix, bool up);

  /// Issues a GET. On success the response's elapsed_ms includes the
  /// endpoint model's latency + transfer time.
  Expected<HttpResponse> get(const std::string& url_text) override;

  /// Cumulative metrics. `failures` counts every unsuccessful request:
  /// sampled 503s, hard-down endpoints (`up == false`), handler errors,
  /// and unrouted requests (the latter also itemized in `unrouted`).
  struct Metrics {
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t unrouted = 0;           ///< no service matched the URL
    std::uint64_t hard_down = 0;          ///< endpoint was switched off
    std::uint64_t transient_failures = 0; ///< sampled 503s
    std::uint64_t corruptions_injected = 0; ///< responses tampered post-handler
    std::uint64_t bytes_transferred = 0;
    double total_elapsed_ms = 0.0;
  };
  Metrics metrics() const;
  /// Zeroes the cumulative counters (process-wide and per-route). Does NOT
  /// touch the simulated clock: now_ms() is monotonic across resets, so
  /// circuit-breaker cool-downs and chaos fault windows keep their phase.
  /// (Historically the clock WAS metrics_.total_elapsed_ms, and resetting
  /// metrics rewound time — see obs/clock.hpp.)
  void reset_metrics();

  /// Per-route metrics breakdown (same counters, scoped to one endpoint).
  /// Returns nullopt when no such route is registered; `unrouted` is always
  /// zero here (an unrouted request has no route to charge).
  std::optional<Metrics> metrics_for(const std::string& host,
                                     const std::string& path_prefix) const;

  /// Every registered (host, path_prefix) pair, in registration order —
  /// lets the metrics bridge enumerate per-route counters.
  std::vector<std::pair<std::string, std::string>> route_keys() const;

  /// The fabric's simulated clock: monotonic simulated milliseconds spent
  /// in requests (and injected waits). Drives retry backoff deadlines,
  /// circuit-breaker cool-downs, and chaos fault windows. Unlike the
  /// metrics counters, the clock survives reset_metrics().
  double now_ms() const { return clock_.now_ms(); }

  /// The underlying monotonic clock — attach it to an obs::Tracer to get
  /// the simulated timeline alongside wall time.
  const obs::SimClock& sim_clock() const { return clock_; }

  /// Advances the simulated clock without issuing a request (retry backoff
  /// sleeps). The wait is accounted into total_elapsed_ms like any other
  /// simulated cost.
  void advance_clock(double ms);

  /// The construction seed; resilience wrappers derive their jitter streams
  /// from this lineage (without consuming this fabric's own generator, so
  /// installing a wrapper does not perturb the fault-free request timings).
  std::uint64_t seed() const { return seed_; }

  /// Fault injector hook (the chaos harness): called per request with the
  /// target URL, the route's configured model, and the simulated clock;
  /// returns an overriding model for this request, or nullopt to pass
  /// through unchanged.
  using FaultInjector =
      std::function<std::optional<EndpointModel>(const Url&, const EndpointModel&,
                                                 double now_ms)>;
  void set_fault_injector(FaultInjector injector) {
    std::lock_guard lock(mu_);
    injector_ = std::move(injector);
  }

  /// Response tamperer hook (the chaos corruption harness): called after a
  /// handler succeeds and the response has been signed, with the fabric's
  /// RNG for seeded corruption draws. Returns true when it actually altered
  /// the response (counted in Metrics::corruptions_injected). The hook MUST
  /// only consume RNG draws for requests matching an active corruption
  /// window, so a schedule without corruption leaves the fault-free request
  /// timings bit-identical.
  using ResponseTamperer =
      std::function<bool(const Url&, HttpResponse&, double now_ms, Rng& rng)>;
  void set_response_tamperer(ResponseTamperer tamperer) {
    std::lock_guard lock(mu_);
    tamperer_ = std::move(tamperer);
  }

 private:
  struct Route {
    std::string host;
    std::string path_prefix;
    Handler handler;
    EndpointModel model;
    Metrics metrics;
  };
  Route* find_route(const Url& url);
  void charge_elapsed(double ms);  ///< metrics + clock together (locked)

  /// Recursive so a handler running under dispatch can issue nested GETs.
  mutable std::recursive_mutex mu_;
  std::vector<Route> routes_;
  std::uint64_t seed_;
  Rng rng_;
  Metrics metrics_;
  obs::SimClock clock_;
  FaultInjector injector_;
  ResponseTamperer tamperer_;
};

}  // namespace nvo::services
