// In-process HTTP GET fabric: the transport beneath every simulated NVO
// service. The paper's interfaces are deliberately simple — "based on HTTP
// Get operations" (§3.1) — so the fabric models exactly that: URL in, typed
// response out, with a per-endpoint performance model (connection latency,
// bandwidth, failure rate, up/down state) that reproduces the WAN behaviour
// the prototype saw: per-request overhead dominating many-small-image
// workloads, and archives occasionally being down.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/rng.hpp"

namespace nvo::services {

/// A parsed URL: scheme://host/path?query.
struct Url {
  std::string scheme = "http";
  std::string host;
  std::string path;                          ///< begins with '/'
  std::map<std::string, std::string> query;  ///< decoded key -> value

  std::string to_string() const;
  static Expected<Url> parse(const std::string& text);

  /// Query parameter lookup.
  std::optional<std::string> param(const std::string& key) const;
  std::optional<double> param_double(const std::string& key) const;
};

/// Percent-encodes a query value.
std::string url_encode(const std::string& s);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::vector<std::uint8_t> body;
  double elapsed_ms = 0.0;  ///< simulated wall time for this request

  std::string body_text() const { return std::string(body.begin(), body.end()); }
  static HttpResponse text(std::string s, const std::string& type = "text/plain");
  static HttpResponse binary(std::vector<std::uint8_t> bytes, const std::string& type);
};

/// Endpoint handler: path + query in, response out.
using Handler = std::function<Expected<HttpResponse>(const Url&)>;

/// Performance/fault model for one endpoint.
struct EndpointModel {
  double latency_ms = 50.0;         ///< per-request setup cost (the SIA killer)
  double bandwidth_mbps = 8.0;      ///< payload transfer rate
  double failure_rate = 0.0;        ///< probability of a 503 per request
  bool up = true;                   ///< hard down switch (archive outage)
};

/// The fabric: a routing table plus metrics. Thread-compatible: handlers
/// run on the calling thread; the metrics counters are plain (the grid
/// executor serializes its fabric access through the service layer).
class HttpFabric {
 public:
  explicit HttpFabric(std::uint64_t seed = 7);

  /// Registers `handler` for all URLs on `host` whose path begins with
  /// `path_prefix` (longest prefix wins).
  void route(const std::string& host, const std::string& path_prefix, Handler handler,
             EndpointModel model = {});

  /// Toggles an endpoint's availability (e.g. "MAST is down").
  Status set_up(const std::string& host, const std::string& path_prefix, bool up);

  /// Issues a GET. On success the response's elapsed_ms includes the
  /// endpoint model's latency + transfer time.
  Expected<HttpResponse> get(const std::string& url_text);

  /// Cumulative metrics.
  struct Metrics {
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t bytes_transferred = 0;
    double total_elapsed_ms = 0.0;
  };
  const Metrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = {}; }

 private:
  struct Route {
    std::string host;
    std::string path_prefix;
    Handler handler;
    EndpointModel model;
  };
  Route* find_route(const Url& url);

  std::vector<Route> routes_;
  Rng rng_;
  Metrics metrics_;
};

}  // namespace nvo::services
