#include "services/replica_cache.hpp"

#include <algorithm>

#include "services/integrity.hpp"

namespace nvo::services {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

ReplicaCache::ReplicaCache(ReplicaCacheConfig config) : config_(config) {
  const std::size_t n = round_up_pow2(config_.shards == 0 ? 1 : config_.shards);
  config_.shards = n;
  // At least one byte per shard, or small budgets would round to 0 and be
  // mistaken for "unbounded".
  shard_budget_ =
      config_.byte_budget == 0
          ? 0
          : std::max<std::size_t>(std::size_t{1}, config_.byte_budget / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ReplicaCache::Shard& ReplicaCache::shard_for(const std::string& lfn) {
  return *shards_[std::hash<std::string>{}(lfn) & (shards_.size() - 1)];
}

const ReplicaCache::Shard& ReplicaCache::shard_for(const std::string& lfn) const {
  return *shards_[std::hash<std::string>{}(lfn) & (shards_.size() - 1)];
}

ReplicaCache::Payload ReplicaCache::get(const std::string& lfn) {
  Shard& s = shard_for(lfn);
  bool heal = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(lfn);
    if (it == s.map.end()) {
      ++s.misses;
      return nullptr;
    }
    // Read-time re-verification: the payload must still hash to the digest
    // recorded at admission. A mismatch is treated as a miss and the rotten
    // entry is dropped so the caller re-stages from the archive.
    if (it->second.digest != 0 &&
        integrity::content_digest(*it->second.payload) != it->second.digest) {
      ++s.integrity_mismatches;
      ++s.misses;
      s.bytes -= it->second.payload->size();
      s.lru.erase(it->second.lru_it);
      s.map.erase(it);
      heal = true;
    } else {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);  // refresh to MRU
      return it->second.payload;
    }
  }
  // Outside the shard lock: deregister the dropped replica like an eviction.
  if (heal) notify_evicted(lfn);
  return nullptr;
}

ReplicaCache::Payload ReplicaCache::put(const std::string& lfn,
                                        std::vector<std::uint8_t> bytes,
                                        std::uint64_t expected_digest) {
  const std::uint64_t digest = integrity::content_digest(bytes);
  auto payload =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  std::vector<std::string> evicted;
  Shard& s = shard_for(lfn);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (expected_digest != 0 && digest != expected_digest) {
      // Admission check failed: the bytes are not what the producer signed.
      ++s.integrity_rejects;
      return nullptr;
    }
    const auto it = s.map.find(lfn);
    if (it != s.map.end()) {
      s.bytes -= it->second.payload->size();
      s.bytes += payload->size();
      it->second.payload = payload;
      it->second.digest = digest;
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      ++s.insertions;  // every put counts, replacements included
    } else {
      s.lru.push_front(lfn);
      s.map.emplace(lfn, Shard::Entry{payload, digest, s.lru.begin()});
      s.bytes += payload->size();
      ++s.insertions;
    }
    // Evict from the cold end until this shard fits its budget slice. The
    // just-inserted entry is exempt so an oversized payload still caches
    // (and simply owns the whole shard).
    while (shard_budget_ != 0 && s.bytes > shard_budget_ && s.lru.size() > 1) {
      const std::string& victim = s.lru.back();
      if (victim == lfn) break;
      const auto vit = s.map.find(victim);
      s.bytes -= vit->second.payload->size();
      evicted.push_back(victim);
      s.map.erase(vit);
      s.lru.pop_back();
      ++s.evictions;
    }
  }
  for (const std::string& victim : evicted) notify_evicted(victim);
  return payload;
}

void ReplicaCache::notify_evicted(const std::string& lfn) {
  EvictionCallback cb;
  {
    std::lock_guard<std::mutex> lock(cb_mu_);
    cb = on_evict_;
  }
  // Invoked with no lock held: the callback may re-enter the cache (see the
  // lock-discipline note on EvictionCallback).
  if (cb) cb(lfn);
}

std::uint64_t ReplicaCache::digest_of(const std::string& lfn) const {
  const Shard& s = shard_for(lfn);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(lfn);
  return it == s.map.end() ? 0 : it->second.digest;
}

bool ReplicaCache::contains(const std::string& lfn) const {
  const Shard& s = shard_for(lfn);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.map.count(lfn) != 0;
}

void ReplicaCache::set_eviction_callback(EvictionCallback cb) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  on_evict_ = std::move(cb);
}

ReplicaCache::Stats ReplicaCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.integrity_rejects += shard->integrity_rejects;
    out.integrity_mismatches += shard->integrity_mismatches;
    out.bytes += shard->bytes;
    out.entries += shard->map.size();
  }
  return out;
}

}  // namespace nvo::services
