#include "services/table_service.hpp"

#include "common/strings.hpp"
#include "votable/table_ops.hpp"
#include "votable/votable_io.hpp"

namespace nvo::services {

namespace {

/// Fetches and parses an operand VOTable named by URL.
Expected<votable::Table> fetch_table(HttpFabric& fabric, const std::string& url) {
  auto response = fabric.get(url);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kServiceUnavailable,
                 format("operand fetch returned %d for %s", response->status,
                        url.c_str()));
  }
  return votable::from_votable_xml(response->body_text());
}

HttpResponse bad_request(const std::string& message) {
  HttpResponse r = HttpResponse::text(message);
  r.status = 400;
  return r;
}

HttpResponse table_response(const votable::Table& table) {
  return HttpResponse::text(votable::to_votable_xml(table),
                            "text/xml;content=x-votable");
}

}  // namespace

TableService register_table_service(HttpFabric& fabric, const std::string& host) {
  HttpFabric* fab = &fabric;
  const EndpointModel model{30.0, 40.0, 0.0, true};

  fabric.route(host, "/tables/join",
               [fab](const Url& url) -> Expected<HttpResponse> {
                 const auto left = url.param("left");
                 const auto right = url.param("right");
                 const auto lkey = url.param("lkey");
                 const auto rkey = url.param("rkey");
                 if (!left || !right || !lkey || !rkey) {
                   return bad_request("join needs left, right, lkey, rkey");
                 }
                 const std::string kind = url.param("kind").value_or("inner");
                 if (kind != "inner" && kind != "left") {
                   return bad_request("kind must be inner or left");
                 }
                 auto lt = fetch_table(*fab, *left);
                 if (!lt.ok()) return lt.error();
                 auto rt = fetch_table(*fab, *right);
                 if (!rt.ok()) return rt.error();
                 auto joined = votable::join(lt.value(), rt.value(), *lkey, *rkey,
                                             kind == "left"
                                                 ? votable::JoinKind::kLeft
                                                 : votable::JoinKind::kInner);
                 if (!joined.ok()) return bad_request(joined.error().to_string());
                 return table_response(joined.value());
               },
               model);

  fabric.route(host, "/tables/sort",
               [fab](const Url& url) -> Expected<HttpResponse> {
                 const auto in = url.param("in");
                 const auto by = url.param("by");
                 if (!in || !by) return bad_request("sort needs in, by");
                 const bool ascending = url.param("order").value_or("asc") != "desc";
                 auto table = fetch_table(*fab, *in);
                 if (!table.ok()) return table.error();
                 auto sorted = votable::sort_by(table.value(), *by, ascending);
                 if (!sorted.ok()) return bad_request(sorted.error().to_string());
                 return table_response(sorted.value());
               },
               model);

  fabric.route(host, "/tables/project",
               [fab](const Url& url) -> Expected<HttpResponse> {
                 const auto in = url.param("in");
                 const auto cols = url.param("cols");
                 if (!in || !cols) return bad_request("project needs in, cols");
                 auto table = fetch_table(*fab, *in);
                 if (!table.ok()) return table.error();
                 auto projected = votable::project(table.value(), split(*cols, ','));
                 if (!projected.ok()) {
                   return bad_request(projected.error().to_string());
                 }
                 return table_response(projected.value());
               },
               model);

  TableService svc;
  svc.join_url = "http://" + host + "/tables/join";
  svc.sort_url = "http://" + host + "/tables/sort";
  svc.project_url = "http://" + host + "/tables/project";
  return svc;
}

namespace {
Expected<votable::Table> parse_service_response(Expected<HttpResponse> response) {
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kInvalidArgument,
                 "table service error: " + response->body_text());
  }
  return votable::from_votable_xml(response->body_text());
}
}  // namespace

Expected<votable::Table> remote_join(HttpFabric& fabric, const TableService& svc,
                                     const std::string& left_url,
                                     const std::string& right_url,
                                     const std::string& left_key,
                                     const std::string& right_key, bool left_join) {
  const std::string url = svc.join_url + "?left=" + url_encode(left_url) +
                          "&right=" + url_encode(right_url) +
                          "&lkey=" + url_encode(left_key) +
                          "&rkey=" + url_encode(right_key) +
                          "&kind=" + (left_join ? "left" : "inner");
  return parse_service_response(fabric.get(url));
}

Expected<votable::Table> remote_sort(HttpFabric& fabric, const TableService& svc,
                                     const std::string& table_url,
                                     const std::string& by_column, bool ascending) {
  const std::string url = svc.sort_url + "?in=" + url_encode(table_url) +
                          "&by=" + url_encode(by_column) +
                          "&order=" + (ascending ? "asc" : "desc");
  return parse_service_response(fabric.get(url));
}

Expected<votable::Table> remote_project(HttpFabric& fabric, const TableService& svc,
                                        const std::string& table_url,
                                        const std::vector<std::string>& columns) {
  const std::string url = svc.project_url + "?in=" + url_encode(table_url) +
                          "&cols=" + url_encode(join(columns, ","));
  return parse_service_response(fabric.get(url));
}

}  // namespace nvo::services
