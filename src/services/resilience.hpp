// The resilience layer over the HTTP fabric. The paper's prototype ran
// against real 2003 archives that were "occasionally down" and survived on
// layered fault tolerance; this module is the per-request layer of that
// stack: capped exponential backoff with deterministic seeded jitter, a
// per-endpoint circuit breaker (closed -> open -> half-open), and mirror
// failover — all expressed in the fabric's *simulated* time so chaos
// experiments stay bit-reproducible. Composition with the upper layers
// (per-galaxy isolation, DAGMan node retries, rescue DAGs) is documented in
// DESIGN.md §7 "Failure semantics".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/rng.hpp"
#include "services/http.hpp"
#include "services/integrity.hpp"
#include "services/lifecycle.hpp"

namespace nvo::services {

/// Capped exponential backoff with seeded jitter and simulated-time budgets.
struct RetryPolicy {
  int max_attempts = 4;            ///< total attempts per host, incl. the first
  double base_backoff_ms = 100.0;  ///< wait before the second attempt
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 3200.0;  ///< cap on any single wait
  double jitter_fraction = 0.25;   ///< each wait scaled by 1 +/- U*fraction
  /// An attempt whose simulated duration exceeds this is treated as a
  /// timeout failure even if a response arrived (client-side timeout;
  /// catches bandwidth brownouts). 0 disables the per-attempt cap.
  double attempt_timeout_ms = 0.0;
  /// Overall simulated-time budget for one get() call, retries and backoff
  /// included. 0 disables the deadline.
  double deadline_ms = 20000.0;
  /// Recompute every signed response's digest after transfer and treat a
  /// mismatch as a retryable fault (it consumes an attempt from the same
  /// budget as a 503 — the unified retry budget sees corruption and
  /// flakiness identically). Verification of an intact payload changes no
  /// observable behaviour, so this is safe to leave on.
  bool verify_digests = true;
  /// How long (simulated ms) an (endpoint, resource) pair stays quarantined
  /// after serving bytes that failed verification. While quarantined, a
  /// request for that resource goes straight to the registered mirror.
  double quarantine_ms = 60000.0;
};

/// Circuit-breaker thresholds, in simulated time.
struct BreakerPolicy {
  int failure_threshold = 4;      ///< consecutive failures that trip the breaker
  double cooldown_ms = 30000.0;   ///< open -> half-open after this much sim time
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* to_string(BreakerState state);

/// Per-endpoint circuit breaker. All transitions are driven by the caller's
/// simulated clock: closed -> open after `failure_threshold` consecutive
/// failures; open -> half-open once `cooldown_ms` of simulated time has
/// passed; half-open -> closed on a success, half-open -> open (a new trip)
/// on a failure.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  /// True when a request may be issued now; transitions open -> half-open
  /// when the cool-down has expired.
  bool allow(double now_ms);
  void record_success();
  void record_failure(double now_ms);

  BreakerState state() const { return state_; }
  std::uint64_t trips() const { return trips_; }

 private:
  void trip(double now_ms);

  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  double opened_at_ms_ = 0.0;
  std::uint64_t trips_ = 0;
};

/// Cumulative per-endpoint (per-host) resilience accounting.
struct EndpointStats {
  std::uint64_t attempts = 0;        ///< requests actually issued
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;        ///< failed attempts (pre-retry)
  std::uint64_t retries = 0;         ///< re-attempts after a failure
  std::uint64_t breaker_trips = 0;
  std::uint64_t short_circuits = 0;  ///< calls rejected while the breaker was open
  std::uint64_t failovers = 0;       ///< calls ultimately served by a mirror
  std::uint64_t integrity_failures = 0;  ///< responses that failed digest checks
  std::uint64_t quarantine_skips = 0;    ///< calls rerouted around a quarantine
  double backoff_wait_ms = 0.0;      ///< simulated time spent sleeping
};

/// HttpFabric::get with retry, circuit breaking, and mirror failover.
/// Endpoint state (breaker + stats) is keyed by host — the archive is the
/// unit that goes down. Deterministic: the jitter stream is derived from the
/// fabric's seed lineage (not from its live generator), so wrapping a fabric
/// changes nothing at zero fault rate, and identically-seeded runs retry
/// identically.
class ResilientClient : public HttpChannel {
 public:
  /// `label` separates the jitter streams of multiple clients sharing one
  /// fabric (portal vs compute service).
  ResilientClient(HttpFabric& fabric, RetryPolicy retry = {},
                  BreakerPolicy breaker = {}, const std::string& label = "client");

  /// Registers a failover mirror: requests to `host` that cannot be served
  /// (breaker open, retries exhausted, deadline passed) are re-issued
  /// against `mirror_host` with the same path and query.
  void add_mirror(const std::string& host, const std::string& mirror_host);

  /// Mirror registered for `host` (empty when none).
  std::string mirror_for(const std::string& host) const {
    const auto it = mirrors_.find(host);
    return it == mirrors_.end() ? std::string() : it->second;
  }

  Expected<HttpResponse> get(const std::string& url_text) override;

  /// Applies a request-lifecycle context to every get() issued while the
  /// guard lives: the per-call deadline becomes min(policy deadline,
  /// remaining budget), backoff sleeps are clamped to the remaining budget
  /// (the clock advances exactly to the deadline, never past it), and a
  /// cancelled token fails calls fast with kCancelled. Guards nest
  /// (restore-on-destruct); the client is single-threaded per the fabric's
  /// thread-compatibility contract, so no locking.
  class ScopedContext {
   public:
    ScopedContext(ResilientClient& client, const RequestContext& ctx)
        : client_(client), prev_(client.ctx_) {
      client_.ctx_ = ctx;
    }
    ~ScopedContext() { client_.ctx_ = prev_; }
    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

   private:
    ResilientClient& client_;
    RequestContext prev_;
  };

  /// Stats for one endpoint; nullptr when the host was never contacted.
  const EndpointStats* stats_for(const std::string& host) const;
  /// Sum over every endpoint.
  EndpointStats totals() const;
  /// Breaker state for one endpoint (kClosed when never contacted).
  BreakerState breaker_state(const std::string& host) const;
  /// Every host this client has contacted (sorted; map iteration order).
  std::vector<std::string> known_hosts() const;

  HttpFabric& fabric() { return fabric_; }
  const RetryPolicy& retry_policy() const { return retry_; }
  /// The quarantine list: (endpoint, resource) pairs that served bytes which
  /// failed digest verification, with expiry on the simulated clock.
  const integrity::QuarantineList& quarantine() const { return quarantine_; }

 private:
  struct Endpoint {
    CircuitBreaker breaker;
    EndpointStats stats;
  };
  Endpoint& endpoint(const std::string& host);

  /// One host's full retry loop. Returns a response (success or a
  /// non-retryable protocol reply) or the last error.
  Expected<HttpResponse> get_from_host(const Url& url, double deadline_ms,
                                       Endpoint& ep);

  HttpFabric& fabric_;
  RetryPolicy retry_;
  BreakerPolicy breaker_policy_;
  Rng jitter_rng_;
  /// Active request context (unbounded + live token by default); swapped by
  /// ScopedContext around a request's lifetime.
  RequestContext ctx_;
  std::map<std::string, Endpoint> endpoints_;
  std::map<std::string, std::string> mirrors_;
  integrity::QuarantineList quarantine_;
};

}  // namespace nvo::services
