#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <string_view>

namespace nvo {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t hash64(const char* data, std::size_t len) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t hash64(const std::string_view s) { return hash64(s.data(), s.size()); }

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64-expand the seed into the four state words; never all-zero.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection-free for our purposes: modulo bias is negligible at 64 bits
  // for the small n used in site/replica selection, but we debias anyway.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::uint64_t Rng::poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    const double x = normal(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double x_min, double alpha) {
  assert(x_min > 0.0 && alpha > 0.0);
  return x_min * std::pow(1.0 - uniform(), -1.0 / alpha);
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace nvo
