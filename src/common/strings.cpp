#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace nvo {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string fixed(double value, int digits) { return format("%.*f", digits, value); }

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace nvo
