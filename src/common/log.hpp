// Minimal leveled logger. Default level is kWarn so tests and benchmarks run
// quietly; examples raise it to kInfo to narrate the pipeline the way the
// paper's portal surfaced status messages.
#pragma once

#include <string>

namespace nvo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `[level] [tag] message` to stderr when enabled.
void log(LogLevel level, const std::string& tag, const std::string& message);

void log_debug(const std::string& tag, const std::string& message);
void log_info(const std::string& tag, const std::string& message);
void log_warn(const std::string& tag, const std::string& message);
void log_error(const std::string& tag, const std::string& message);

}  // namespace nvo
