#include "common/ids.hpp"

#include <atomic>

#include "common/strings.hpp"

namespace nvo {

struct IdGenerator::Impl {
  std::atomic<std::uint64_t> counter{0};
};

IdGenerator::IdGenerator(std::string prefix)
    : prefix_(std::move(prefix)), impl_(std::make_shared<Impl>()) {}

std::string IdGenerator::next() {
  const std::uint64_t n = impl_->counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return format("%s-%06llu", prefix_.c_str(), static_cast<unsigned long long>(n));
}

std::uint64_t IdGenerator::count() const {
  return impl_->counter.load(std::memory_order_relaxed);
}

}  // namespace nvo
