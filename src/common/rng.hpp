// Deterministic random number generation for the synthetic universe and the
// simulated grid. Everything in the reproduction is seeded so experiments are
// reproducible bit-for-bit; we use xoshiro256** (public-domain algorithm by
// Blackman & Vigna) rather than std::mt19937 because its output sequence is
// stable across standard-library implementations.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace nvo {

/// xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Poisson deviate. Uses Knuth multiplication for small lambda and a
  /// normal approximation for large lambda (lambda > 64), which is ample for
  /// photon shot noise in synthetic images.
  std::uint64_t poisson(double lambda);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential deviate with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Pareto-like heavy-tailed deviate used for file-size and service-latency
  /// modeling: x_min * u^(-1/alpha).
  double pareto(double x_min, double alpha);

  /// Derives an independent child generator; used to give each galaxy /
  /// site / request its own stream so insertion order does not perturb
  /// other entities' draws.
  Rng fork();

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 single step; exposed for deterministic hashing of names into
/// seeds (e.g. seeding a galaxy's generator from its identifier).
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a string (FNV-1a), for name->seed derivation.
std::uint64_t hash64(const char* data, std::size_t len);
std::uint64_t hash64(const std::string_view s);

}  // namespace nvo
