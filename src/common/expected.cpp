#include "common/expected.hpp"

namespace nvo {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "kInvalidArgument";
    case ErrorCode::kNotFound:
      return "kNotFound";
    case ErrorCode::kParseError:
      return "kParseError";
    case ErrorCode::kIoError:
      return "kIoError";
    case ErrorCode::kServiceUnavailable:
      return "kServiceUnavailable";
    case ErrorCode::kTimeout:
      return "kTimeout";
    case ErrorCode::kComputeFailed:
      return "kComputeFailed";
    case ErrorCode::kInfeasible:
      return "kInfeasible";
    case ErrorCode::kAlreadyExists:
      return "kAlreadyExists";
    case ErrorCode::kInternal:
      return "kInternal";
    case ErrorCode::kDataCorruption:
      return "kDataCorruption";
    case ErrorCode::kAborted:
      return "kAborted";
    case ErrorCode::kCancelled:
      return "kCancelled";
    case ErrorCode::kDeadlineExceeded:
      return "kDeadlineExceeded";
  }
  return "kUnknown";
}

std::string Error::to_string() const {
  std::string out = nvo::to_string(code);
  out += ": ";
  out += message;
  return out;
}

}  // namespace nvo
