// Small string utilities shared across modules (VDL parsing, VOTable XML,
// HTTP-style query strings, FITS header cards).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nvo {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on any whitespace run; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Joins elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double; returns nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view s);

/// Parses a signed 64-bit integer; returns nullopt on any trailing garbage.
std::optional<long long> parse_int(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-point formatting helper (value with `digits` decimals).
std::string fixed(double value, int digits);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

}  // namespace nvo
