// Lightweight Expected<T> error-or-value type (std::expected is C++23; we
// target C++20). Used across the library for fallible operations so that
// services can propagate protocol-level failures without exceptions.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace nvo {

/// Error category, loosely mirroring the failure classes the paper's
/// prototype had to deal with (bad images, unreachable services, missing
/// replicas, malformed documents...).
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kParseError,
  kIoError,
  kServiceUnavailable,
  kTimeout,
  kComputeFailed,
  kInfeasible,
  kAlreadyExists,
  kInternal,
  kDataCorruption,  ///< payload failed digest verification after transfer
  kAborted,         ///< execution killed mid-flight (chaos kill injection)
  kCancelled,         ///< request cancelled cooperatively (token observed)
  kDeadlineExceeded,  ///< request's end-to-end deadline budget ran out
};

/// Human-readable name for an ErrorCode.
const char* to_string(ErrorCode code);

/// An error: a code plus a free-form message with context.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  /// Renders "kNotFound: no replica for lfn 'x'".
  std::string to_string() const;
};

/// Either a value of type T or an Error. Monostate-free, minimal interface:
/// ok(), value(), error(), value_or().
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Expected(ErrorCode code, std::string msg) : data_(Error(code, std::move(msg))) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  T value_or(T fallback) const& { return ok() ? std::get<T>(data_) : std::move(fallback); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::variant<T, Error> data_;
};

/// Expected<void> analogue: success or an Error.
class Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT
  Status(ErrorCode code, std::string msg) : error_(code, std::move(msg)), failed_(true) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace nvo
