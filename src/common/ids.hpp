// Unique request/job identifier generation. The paper's web service "creates
// a unique identifier for each request which is included as a part of the
// returned URL"; we generate deterministic, monotonically increasing ids per
// prefix so test output is stable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace nvo {

/// Thread-safe generator producing "prefix-000001", "prefix-000002", ...
class IdGenerator {
 public:
  explicit IdGenerator(std::string prefix);

  /// Next id; safe to call from multiple threads.
  std::string next();

  /// Number of ids handed out so far.
  std::uint64_t count() const;

 private:
  std::string prefix_;
  // Atomic counter lives in the cpp to keep <atomic> out of the interface.
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace nvo
