// Cooperative cancellation for request-scoped work. A CancellationToken is
// a copyable handle onto shared state: the portal (or a test, or a chaos
// hook) flips it once, and every layer holding a copy — federation fetches,
// the staging loop, queued kernel tasks on the thread pool, the DAGMan
// event loop — observes the flip at its next check point and unwinds.
// Cancellation is advisory, never preemptive: in-flight work finishes its
// current step and releases its resources on the way out, which is what
// keeps the inflight gauges balanced.
//
// Lives in common (not services) because grid::ThreadPool and
// grid::DagManSim consume tokens and must not depend on the services layer.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace nvo {

/// Shared-state cancellation flag. Default-constructed tokens are live
/// (never cancelled) and independent; copies share one flag. Thread-safe:
/// cancel()/cancelled() may race from pool workers and the portal thread.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<State>()) {}

  /// Flips the flag (idempotent; the first reason wins).
  void cancel(const std::string& reason = "cancelled") const {
    if (state_->flag.exchange(true, std::memory_order_acq_rel)) return;
    std::lock_guard lock(state_->mutex);
    state_->reason = reason;
  }

  bool cancelled() const {
    return state_->flag.load(std::memory_order_acquire);
  }

  /// Why the token was cancelled ("" while live). Valid only after
  /// cancelled() returned true.
  std::string reason() const {
    if (!cancelled()) return {};
    std::lock_guard lock(state_->mutex);
    return state_->reason;
  }

  /// Two tokens observing the same flag?
  bool same_as(const CancellationToken& other) const {
    return state_ == other.state_;
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
    mutable std::mutex mutex;
    std::string reason;
  };
  std::shared_ptr<State> state_;
};

}  // namespace nvo
