#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace nvo {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;  // keeps multi-threaded grid-executor lines intact

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] [%s] %s\n", level_name(level), tag.c_str(), message.c_str());
}

void log_debug(const std::string& tag, const std::string& message) {
  log(LogLevel::kDebug, tag, message);
}
void log_info(const std::string& tag, const std::string& message) {
  log(LogLevel::kInfo, tag, message);
}
void log_warn(const std::string& tag, const std::string& message) {
  log(LogLevel::kWarn, tag, message);
}
void log_error(const std::string& tag, const std::string& message) {
  log(LogLevel::kError, tag, message);
}

}  // namespace nvo
