#include "portal/compute_service.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <queue>
#include <utility>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "grid/rescue.hpp"
#include "grid/threadpool.hpp"
#include "services/integrity.hpp"
#include "services/obs_bridge.hpp"
#include "pegasus/request_manager.hpp"
#include "portal/streaming_merge.hpp"
#include "portal/transforms.hpp"
#include "services/sia.hpp"
#include "votable/votable_io.hpp"

namespace nvo::portal {

namespace {
double wall_ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

// --- checkpoint record codecs ---------------------------------------------
// The journal stores per-galaxy morphology rows and staged-image
// registrations as space-separated fields. Doubles are serialized as their
// 64-bit pattern in hex: a resumed row must be bit-identical to the one the
// kernel produced, and a decimal round-trip would lose ulps and break the
// byte-identical-catalog guarantee.

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string hex_double(double d) { return hex_u64(std::bit_cast<std::uint64_t>(d)); }

std::uint64_t parse_hex_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

double parse_hex_double(const std::string& s) {
  return std::bit_cast<double>(parse_hex_u64(s));
}

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Cap on the service-level rolling window of primary stage-in durations
/// (hedge_history_): old weather ages out, the quantile sort stays cheap.
constexpr std::size_t kHedgeHistoryLimit = 512;

/// Linear-interpolated quantile of a sample set (q in [0,1]).
double quantile_of(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (pos - static_cast<double>(lo));
}

std::string unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(
          std::strtoul(s.substr(i + 1, 2).c_str(), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Pointers to the 15 doubles of a result, in serialization order.
/// Templated so the same list serves encode (const) and decode (mutable).
template <typename R>
auto result_doubles(R& r) {
  return std::array{&r.redshift,
                    &r.kpc_per_arcsec,
                    &r.petrosian_r_kpc,
                    &r.params.surface_brightness,
                    &r.params.concentration,
                    &r.params.asymmetry,
                    &r.params.total_flux,
                    &r.params.petrosian_r,
                    &r.params.r20,
                    &r.params.r80,
                    &r.params.centroid_x,
                    &r.params.centroid_y,
                    &r.params.background_level,
                    &r.params.background_sigma,
                    &r.params.snr};
}

std::string encode_result(const core::GalMorphResult& r) {
  std::string out = escape_field(r.galaxy_id);
  out += r.params.valid ? " 1 " : " 0 ";
  out += r.params.failure_reason.empty() ? "-"
                                         : escape_field(r.params.failure_reason);
  for (const double* d : result_doubles(r)) {
    out += ' ';
    out += hex_double(*d);
  }
  return out;
}

bool decode_result(const std::string& payload, core::GalMorphResult& out) {
  const std::vector<std::string> f = split(payload, ' ');
  if (f.size() != 18) return false;
  out.galaxy_id = unescape_field(f[0]);
  out.params.valid = f[1] == "1";
  out.params.failure_reason = f[2] == "-" ? std::string() : unescape_field(f[2]);
  const auto slots = result_doubles(out);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    *slots[i] = parse_hex_double(f[3 + i]);
  }
  return true;
}
}  // namespace

MorphologyService::MorphologyService(services::HttpFabric& fabric, grid::Grid& grid,
                                     pegasus::ReplicaLocationService& rls,
                                     pegasus::TransformationCatalog& tc,
                                     ComputeServiceConfig config)
    : fabric_(fabric),
      grid_(grid),
      rls_(rls),
      tc_(tc),
      config_(std::move(config)),
      client_(fabric, config_.retry, config_.breaker, "compute"),
      ids_("req"),
      pool_(config_.compute_threads),
      tile_executor_([this](std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
        grid::parallel_for_shared(pool_, n, fn);
      }),
      cache_(config_.replica_cache),
      state_(std::make_shared<State>()) {
  for (const auto& [host, mirror] : config_.mirrors) client_.add_mirror(host, mirror);
  // Keep the RLS and grid truthful under eviction: a dropped replica must
  // not be advertised, or Pegasus would prune a stage-in it still needs.
  cache_.set_eviction_callback([this](const std::string& lfn) {
    // An LFN staged by the active request stays advertised until that
    // request's plan is committed (see EvictionDeferral in process()).
    if (defer_evictions_ && request_lfns_.count(lfn) != 0) {
      deferred_evictions_.push_back(lfn);
      return;
    }
    (void)rls_.remove(lfn, config_.cache_site);
    grid_.remove_file(config_.cache_site, lfn);
  });
  // galMorph is installed at every pool (the paper shipped its executable to
  // all three sites).
  for (const std::string& site : grid_.site_names()) {
    (void)tc_.add({"galMorph", site, "/grid/bin/galMorph", {{"version", "1.0"}}});
  }

  // Status endpoint: tiny key=value document.
  auto state = state_;
  fabric_.route(config_.host, "/status",
                [state](const services::Url& url)
                    -> Expected<services::HttpResponse> {
                  const auto id = url.param("id");
                  if (!id) return Error(ErrorCode::kInvalidArgument, "missing id");
                  const auto it = state->requests.find(*id);
                  if (it == state->requests.end()) {
                    return Error(ErrorCode::kNotFound, "unknown request " + *id);
                  }
                  const RequestRecord& r = it->second;
                  std::string body = "state=" + r.state + "\n";
                  if (r.state == "completed") {
                    body += "result=" + r.result_lfn + "\n";
                  }
                  for (const std::string& m : r.messages) body += "message=" + m + "\n";
                  return services::HttpResponse::text(body);
                },
                services::EndpointModel{10.0, 50.0, 0.0, true});

  // Result endpoint: serves the computed VOTable.
  fabric_.route(config_.host, "/results",
                [state](const services::Url& url)
                    -> Expected<services::HttpResponse> {
                  const auto name = url.param("name");
                  if (!name) return Error(ErrorCode::kInvalidArgument, "missing name");
                  const auto it = state->results.find(*name);
                  if (it == state->results.end()) {
                    return Error(ErrorCode::kNotFound, "no result " + *name);
                  }
                  return services::HttpResponse::text(it->second,
                                                      "text/xml;content=x-votable");
                },
                services::EndpointModel{10.0, 50.0, 0.0, true});
}

Expected<std::string> MorphologyService::gal_morph_compute(
    const votable::Table& input, const std::string& out_name,
    const services::RequestContext& ctx) {
  RequestRecord record;
  record.id = ids_.next();
  record.trace.request_id = record.id;
  record.trace.cluster_name = out_name;
  const std::string status_url =
      "http://" + config_.host + "/status?id=" + record.id;
  record.messages.push_back("request accepted: " + out_name);

  const Status s = process(record, input, out_name, ctx);
  if (!s.ok()) {
    // Cancelled/expired are first-class terminal states — the portal maps
    // them back onto its own request lifecycle; everything else is "failed".
    record.state = s.error().code == ErrorCode::kCancelled ? "cancelled"
                   : s.error().code == ErrorCode::kDeadlineExceeded
                       ? "expired"
                       : "failed";
    record.messages.push_back("error: " + s.error().to_string());
  }
  const std::string request_id = record.id;
  state_->requests[request_id] = std::move(record);
  state_->order.push_back(request_id);
  return status_url;
}

Status MorphologyService::process(RequestRecord& record, const votable::Table& input,
                                  const std::string& out_name,
                                  const services::RequestContext& ctx) {
  ServiceTrace& trace = record.trace;
  obs::Span req = obs::start_span(config_.tracer, "compute.request", "compute");
  req.note("request", record.id);
  if (ctx.cancelled()) {
    return Error(ErrorCode::kCancelled,
                 "request cancelled before staging: " + ctx.cancel.reason());
  }
  if (ctx.expired(fabric_.now_ms())) {
    return Error(ErrorCode::kDeadlineExceeded,
                 "deadline budget exhausted before staging");
  }
  // Every transport call this request makes — staging fetches and their
  // retries — now sees the caller's remaining budget and cancellation token;
  // restored when process() returns, so polls from other requests are
  // unaffected.
  services::ResilientClient::ScopedContext scoped_ctx(client_, ctx);
  const std::string out_lfn = ends_with(out_name, ".vot")
                                  ? out_name
                                  : output_votable_lfn(out_name);
  record.result_lfn = "http://" + config_.host + "/results?name=" + out_lfn;

  // (2) RLS lookup for the output VOTable: the result cache.
  if (rls_.exists(out_lfn) && state_->results.count(out_lfn)) {
    trace.cache_hit = true;
    trace.total_sim_seconds = 0.0;
    record.state = "completed";
    record.messages.push_back("output " + out_lfn + " already materialized (RLS hit)");
    req.count("result_cache_hit", 1.0);
    return Status::Ok();
  }

  // (2b) Checkpoint-journal result cache: a cluster whose catalog was
  // persisted by an earlier (possibly killed) campaign completes without
  // re-staging, re-planning, or re-computing anything.
  if (config_.journal) {
    if (const std::string* xml = config_.journal->find("cluster", out_lfn)) {
      state_->results[out_lfn] = *xml;
      rls_.add(out_lfn, config_.cache_site, record.result_lfn);
      grid_.put_file(config_.cache_site, out_lfn, xml->size());
      trace.journal_hit = true;
      trace.total_sim_seconds = 0.0;
      record.state = "completed";
      record.messages.push_back("output " + out_lfn +
                                " recovered from checkpoint journal");
      req.count("journal_hit", 1.0);
      return Status::Ok();
    }
  }

  const auto id_col = input.column_index("id");
  const auto url_col = input.column_index("cutout_url");
  if (!id_col || !url_col) {
    return Error(ErrorCode::kInvalidArgument,
                 "input VOTable needs id and cutout_url columns");
  }
  trace.galaxies = input.num_rows();
  if (trace.galaxies == 0) {
    return Error(ErrorCode::kInvalidArgument, "input VOTable has no rows");
  }

  // Checkpoint journal: records for this cluster are keyed "<out_lfn>/...".
  grid::CheckpointJournal* journal = config_.journal;
  const std::string ck = out_lfn + "/";
  if (journal) {
    // Resume replay: re-register journaled staged images (replica location,
    // size, content digest) so the planner sees the same replica state the
    // original run had at plan time — identical inputs give an identical
    // concrete DAG, which is what lets journaled node ids line up.
    journal->for_each("image", [&](const std::string& key, const std::string& payload) {
      if (!starts_with(key, ck)) return;
      const std::vector<std::string> f = split(payload, ' ');
      if (f.size() != 3) return;
      const std::string lfn = key.substr(ck.size());
      rls_.add(lfn, config_.cache_site, unescape_field(f[0]), parse_hex_u64(f[2]));
      grid_.put_file(config_.cache_site, lfn,
                     std::strtoull(f[1].c_str(), nullptr, 10));
    });
  }

  // (3) Stage images through the replica cache, pipelined against the
  // morphology kernels: each fetch stays on this thread (the fabric is
  // thread-compatible, not thread-safe), but the moment a payload is
  // resident its kernel task is submitted to the pool, so simulated
  // transfer time overlaps real compute time instead of serializing with
  // it. A bounded in-flight count keeps pinned cutout memory proportional
  // to the prefetch depth, not the cluster size.
  record.messages.push_back(format("staging %zu galaxy images", trace.galaxies));
  obs::Span staging = obs::start_span(config_.tracer, "compute.staging", "compute");
  // Kernel tasks outlive the staging loop (they drain at the (4e) barrier),
  // so their spans parent under the staging span by explicit id.
  const std::uint64_t staging_id = staging.id();
  const services::EndpointStats staging_before = client_.totals();
  const auto stage_t0 = std::chrono::steady_clock::now();
  const auto z_col = input.column_index("redshift");
  std::vector<core::GalMorphResult> results(trace.galaxies);
  std::vector<std::string> galaxy_ids;
  galaxy_ids.reserve(trace.galaxies);  // exact: element refs stay stable
  const bool pipelined = config_.execution_mode == ExecutionMode::kPipelined;
  // Pipelined mode: per-fetch simulated durations in issue order, replayed
  // below onto stage_in_window concurrent channels to derive each cutout's
  // arrival time on the sim clock (the barriered mode bills the same
  // durations sequentially).
  std::vector<std::pair<std::string, double>> fetch_timeline;
  // Effective per-fetch durations the request observed (post hedging), for
  // the stage-in tail metric. The hedge delay itself derives from
  // hedge_history_, the service-level rolling window of primary durations.
  std::vector<double> effective_durations;
  // Pipelined mode: rows stream into the output VOTable as galaxies finish
  // (kernel done + node final) instead of one concat after the (4e)
  // barrier. Declared before Drain: kernel tasks hold a pointer into it, so
  // it must outlive the pool drain on every exit path.
  std::unique_ptr<StreamingCatalogWriter> writer;
  if (pipelined) {
    writer = std::make_unique<StreamingCatalogWriter>(out_lfn, results);
  }

  // Declared before Drain so it flushes after the pool is idle: deferred
  // evictions deregister (only if still non-resident) once nothing in this
  // request can reference the replicas any more, on success and error paths
  // alike.
  struct EvictionDeferral {
    MorphologyService& svc;
    explicit EvictionDeferral(MorphologyService& s) : svc(s) {
      svc.defer_evictions_ = true;
      svc.request_lfns_.clear();
      svc.deferred_evictions_.clear();
    }
    ~EvictionDeferral() {
      svc.defer_evictions_ = false;
      for (const std::string& lfn : svc.deferred_evictions_) {
        if (!svc.cache_.contains(lfn)) {
          (void)svc.rls_.remove(lfn, svc.config_.cache_site);
          svc.grid_.remove_file(svc.config_.cache_site, lfn);
        }
      }
      svc.deferred_evictions_.clear();
      svc.request_lfns_.clear();
    }
  } deferral{*this};

  // The live count lives in staging_inflight_ (atomic, member) so the
  // "staging.inflight" gauge can observe it; the mutex/cv pair still
  // serializes the blocking-bound protocol around it.
  std::mutex inflight_mu;
  std::condition_variable inflight_cv;
  const std::size_t depth = std::max<std::size_t>(1, config_.prefetch_depth);
  // Any exit path (including mid-staging errors) must drain the pool before
  // the locals the tasks reference go out of scope.
  struct Drain {
    grid::ThreadPool& pool;
    ~Drain() { pool.wait_idle(); }
  } drain{pool_};

  for (std::size_t i = 0; i < input.num_rows(); ++i) {
    // Cooperative cancellation / deadline expiry, checked between galaxies:
    // rows journaled so far are preserved (a resubmission resumes instead of
    // recomputing), kernel tasks already queued drop via their cancel branch,
    // and the Drain/EvictionDeferral guards unwind everything else.
    if (ctx.cancelled()) {
      return Error(ErrorCode::kCancelled,
                   format("staging cancelled after %zu of %zu galaxies", i,
                          input.num_rows()));
    }
    if (ctx.expired(fabric_.now_ms())) {
      return Error(ErrorCode::kDeadlineExceeded,
                   format("deadline exceeded while staging (%zu of %zu galaxies)",
                          i, input.num_rows()));
    }
    const auto id = input.row(i)[*id_col].as_string();
    const auto url = input.row(i)[*url_col].as_string();
    if (!id || !url) {
      return Error(ErrorCode::kInvalidArgument, format("row %zu lacks id/url", i));
    }
    galaxy_ids.push_back(*id);
    const std::string lfn = image_lfn(*id);
    // Resumed galaxy: the journal holds the kernel's row bit-for-bit, so
    // neither the image bytes nor the kernel are needed again. The replica
    // registration was already replayed above, so planning still sees it.
    if (journal) {
      if (const std::string* row = journal->find("row", ck + *id)) {
        if (decode_result(*row, results[i])) {
          ++trace.rows_resumed;
          // The journaled row is the kernel's output bit-for-bit; only the
          // node outcome is still pending for this galaxy's catalog row.
          if (writer) writer->mark_kernel_done(i);
          continue;
        }
      }
    }
    services::ReplicaCache::Payload payload = cache_.get(lfn);
    if (payload) {
      ++trace.images_cached;
      request_lfns_.insert(lfn);  // a hit can still be evicted mid-request
      if (journal && !journal->has("image", ck + lfn)) {
        (void)journal->append("image", ck + lfn,
                              escape_field(*url) + ' ' +
                                  format("%zu", payload->size()) + ' ' +
                                  hex_u64(cache_.digest_of(lfn)));
      }
    } else {
      const double fetch_before_ms = fabric_.metrics().total_elapsed_ms;
      auto response = client_.get(*url);
      const double fetch_ms =
          fabric_.metrics().total_elapsed_ms - fetch_before_ms;
      trace.image_fetch_sim_ms += fetch_ms;
      if (response.ok()) trace.staging_wan_bytes += response->body.size();
      double effective_ms = fetch_ms;
      // Hedged stage-in: a fetch slower than the hedge delay (the configured
      // quantile of the rolling primary-duration history) is re-issued
      // against the archive's mirror. First verified success wins — on the
      // overlapped timeline the mirror's copy lands at delay + hedge
      // duration, so the effective arrival is the minimum — and the loser's
      // bytes are charged to hedge_wasted_bytes (its stream is cancelled,
      // but the WAN transfer already happened). Pipelined-only: the
      // barriered baseline bills serialized fetches, where a second stream
      // cannot overlap anything.
      if (pipelined && config_.hedge_stage_ins &&
          hedge_history_.size() >= config_.hedge_min_samples) {
        const double hedge_delay =
            quantile_of(hedge_history_, config_.hedge_quantile);
        trace.hedge_delay_ms = hedge_delay;
        std::string hedge_url;
        if (const auto parsed = services::Url::parse(*url); parsed.ok()) {
          const std::string mirror = client_.mirror_for(parsed->host);
          if (!mirror.empty()) {
            services::Url m = parsed.value();
            m.host = mirror;
            hedge_url = m.to_string();
          }
        }
        if (!hedge_url.empty() && hedge_delay > 0.0 && fetch_ms > hedge_delay) {
          const double hedge_before_ms = fabric_.metrics().total_elapsed_ms;
          auto hedge = client_.get(hedge_url);
          const double hedge_ms =
              fabric_.metrics().total_elapsed_ms - hedge_before_ms;
          ++trace.hedged_fetches;
          const bool hedge_ok = hedge.ok() && hedge->status == 200;
          const bool primary_ok = response.ok() && response->status == 200;
          if (hedge_ok) trace.staging_wan_bytes += hedge->body.size();
          if (hedge_ok && (!primary_ok || hedge_delay + hedge_ms < fetch_ms)) {
            ++trace.hedge_wins;
            effective_ms = hedge_delay + hedge_ms;
            if (primary_ok) trace.hedge_wasted_bytes += response->body.size();
            response = std::move(hedge);
          } else if (hedge_ok) {
            trace.hedge_wasted_bytes += hedge->body.size();
          }
        }
      }
      hedge_history_.push_back(fetch_ms);
      if (hedge_history_.size() > kHedgeHistoryLimit) {
        hedge_history_.erase(hedge_history_.begin());
      }
      effective_durations.push_back(effective_ms);
      if (pipelined) fetch_timeline.emplace_back(lfn, effective_ms);
      if (!response.ok() || response->status != 200) {
        // An unreachable image is a per-galaxy failure, not a request
        // failure: cache an empty payload and register it like any other
        // replica so Pegasus's feasibility check still passes — the kernel
        // will flag the galaxy invalid (§4.3.1 item 4).
        const std::string why = response.ok()
                                    ? format("status %d", response->status)
                                    : response.error().to_string();
        log_warn("galmorph-svc", "image fetch failed for " + *id + ": " + why);
        payload = cache_.put(lfn, {});
      } else {
        // The transport layer already verified the body against its signed
        // digest (retrying/failing over on mismatch), so admission here
        // records a digest of known-clean bytes.
        payload = cache_.put(lfn, std::move(response->body));
      }
      ++trace.images_fetched;
      const std::uint64_t digest = cache_.digest_of(lfn);
      rls_.add(lfn, config_.cache_site, *url, digest);
      grid_.put_file(config_.cache_site, lfn, payload->size());
      request_lfns_.insert(lfn);
      if (journal && !journal->has("image", ck + lfn)) {
        (void)journal->append("image", ck + lfn,
                              escape_field(*url) + ' ' +
                                  format("%zu", payload->size()) + ' ' +
                                  hex_u64(digest));
      }
    }

    {
      std::unique_lock lock(inflight_mu);
      inflight_cv.wait(lock, [&] {
        return staging_inflight_.load(std::memory_order_relaxed) < depth;
      });
      staging_inflight_.fetch_add(1, std::memory_order_relaxed);
    }
    // The shared_ptr pins the bytes for the kernel even if the cache evicts
    // the entry mid-request.
    pool_.submit_cancellable(
        ctx.cancel,
        [this, i, payload = std::move(payload), z_col, staging_id,
                  journal, ck, w = writer.get(), &galaxy_ids, &results, &input,
                  &inflight_mu, &inflight_cv] {
      obs::Span kernel = config_.tracer
                             ? config_.tracer->span_under(staging_id,
                                                          "kernel.galmorph", "kernel")
                             : obs::Span();
      core::GalMorphArgs args = config_.default_args;
      if (z_col) {
        const auto z = input.row(i)[*z_col].as_number();
        if (z) args.redshift = *z;
      }
      if (!payload || payload->empty()) {
        results[i].galaxy_id = galaxy_ids[i];
        results[i].redshift = args.redshift;
        results[i].params.valid = false;
        results[i].params.failure_reason = "image unavailable";
      } else {
        results[i] = core::run_gal_morph_bytes(galaxy_ids[i], *payload, args,
                                               &tile_executor_);
      }
      kernel.count(results[i].params.valid ? "valid" : "invalid", 1.0);
      if (journal) {
        // Journaled the moment it exists: a kill any time after this line
        // cannot lose this galaxy's science. append() is thread-safe.
        (void)journal->append("row", ck + galaxy_ids[i],
                              encode_result(results[i]));
      }
      // After this line results[i] is immutable from this thread; the
      // writer may serialize it (under its own lock) the moment the node
      // outcome lands.
      if (w) w->mark_kernel_done(i);
      {
        std::lock_guard lock(inflight_mu);
        staging_inflight_.fetch_sub(1, std::memory_order_relaxed);
      }
      inflight_cv.notify_one();
        },
        // A cancelled request's queued kernels drop without running, but the
        // bookkeeping they owe still happens exactly once: the in-flight
        // bound is released (the staging loop may be parked on it) and the
        // gauge returns to zero. No journal row, no writer progress — the
        // galaxy was never computed.
        [this, &inflight_mu, &inflight_cv] {
          {
            std::lock_guard lock(inflight_mu);
            staging_inflight_.fetch_sub(1, std::memory_order_relaxed);
          }
          inflight_cv.notify_one();
        });
  }
  const services::EndpointStats staging_after = client_.totals();
  trace.staging_retries = staging_after.retries - staging_before.retries;
  trace.staging_failovers = staging_after.failovers - staging_before.failovers;
  trace.staging_breaker_trips =
      staging_after.breaker_trips - staging_before.breaker_trips;
  trace.staging_integrity_failures =
      staging_after.integrity_failures - staging_before.integrity_failures;
  trace.staging_quarantine_skips =
      staging_after.quarantine_skips - staging_before.quarantine_skips;
  trace.stage_in_p99_ms = quantile_of(effective_durations, 0.99);
  staging.count("images_fetched", static_cast<double>(trace.images_fetched));
  staging.count("images_cached", static_cast<double>(trace.images_cached));
  staging.count("retries", static_cast<double>(trace.staging_retries));
  if (trace.hedged_fetches > 0) {
    staging.count("hedged_fetches", static_cast<double>(trace.hedged_fetches));
    staging.count("hedge_wins", static_cast<double>(trace.hedge_wins));
  }
  // Integrity/resume counts appear only when the feature fired, so the
  // zero-fault golden trace stays unchanged.
  if (trace.staging_integrity_failures > 0) {
    staging.count("integrity_failures",
                  static_cast<double>(trace.staging_integrity_failures));
  }
  if (trace.rows_resumed > 0) {
    staging.count("rows_resumed", static_cast<double>(trace.rows_resumed));
  }
  staging.end();

  // (4a) VDL generation (the second stylesheet).
  obs::Span compose_span =
      obs::start_span(config_.tracer, "compute.vdl_compose", "compute");
  auto t0 = std::chrono::steady_clock::now();
  auto vdl_doc = catalog_to_vdl_document(input, out_name, config_.default_args);
  if (!vdl_doc.ok()) return vdl_doc.error();
  trace.vdl_bytes = 0.0;  // recomputed below from text size
  {
    auto vdl_text = catalog_to_vdl(input, out_name, config_.default_args);
    if (vdl_text.ok()) trace.vdl_bytes = static_cast<double>(vdl_text->size());
  }

  // (4b) Chimera composition.
  vds::VirtualDataCatalog vdc;
  if (const Status s = vdc.ingest(vdl_doc.value()); !s.ok()) return s;
  auto abstract = vds::compose_abstract_workflow(vdc, {out_lfn});
  if (!abstract.ok()) return abstract.error();
  trace.compose_wall_ms = wall_ms_since(t0);
  compose_span.count("vdl_bytes", trace.vdl_bytes);
  compose_span.end();

  // (4c) Pegasus planning. The generated concat transformation runs at the
  // service's own site (where the results will be gathered).
  (void)tc_.add({"concatMorph_" + out_name, config_.cache_site,
                 "/grid/bin/concatMorph", {}});
  obs::Span plan_span = obs::start_span(config_.tracer, "compute.plan", "compute");
  t0 = std::chrono::steady_clock::now();
  pegasus::PlannerConfig planner_config = config_.planner;
  planner_config.output_site = config_.cache_site;
  pegasus::Planner planner(grid_, rls_, tc_, planner_config, config_.seed);
  auto plan = planner.plan(abstract.value());
  if (!plan.ok()) return plan.error();
  trace.plan = std::move(plan.value());
  trace.plan_wall_ms = wall_ms_since(t0);
  plan_span.count("concrete_nodes", static_cast<double>(trace.plan.concrete.num_nodes()));
  plan_span.end();

  // (4d) Simulated DAGMan execution for the timing/accounting shape.
  grid::JobCostModel cost = config_.cost;
  if (!cost.compute_seconds) {
    const double ref = cost.compute_reference_seconds;
    cost.compute_seconds = [ref](const vds::DagNode& n) {
      if (starts_with(n.transformation, "concatMorph")) {
        return 0.5 + 0.002 * static_cast<double>(n.inputs.size());
      }
      return ref;
    };
  }
  // Node-retry budget unified with the per-request retries the staging
  // phase already performs, so a permanent failure is not retried
  // multiplicatively across the two layers.
  obs::Span dag_span = obs::start_span(config_.tracer, "compute.dagman", "compute");
  grid::DagManSim dagman(
      grid_, cost,
      pegasus::unify_retry_budgets(config_.failure, config_.retry.max_attempts),
      config_.seed ^ 0xDA6);
  dagman.set_cancel_token(ctx.cancel);
  if (ctx.budget.bounded()) {
    // The DAG runs on its own simulated timeline starting at t=0 == now:
    // whatever budget survives staging/planning is the run's deadline. A
    // budget already at zero is caught here rather than letting 0 read as
    // "no deadline" in the executor.
    if (ctx.expired(fabric_.now_ms())) {
      return Error(ErrorCode::kDeadlineExceeded,
                   "deadline budget exhausted before workflow dispatch");
    }
    dagman.set_deadline_s(ctx.budget.remaining_ms(fabric_.now_ms()) / 1000.0);
  }
  if (config_.work_stealing) {
    dagman.set_work_stealing(true);
    // A thief pool can only take jobs whose transformation it has installed.
    dagman.set_steal_filter([this](const vds::DagNode& n, const std::string& site) {
      return tc_.lookup_at(n.transformation, site).ok();
    });
  }
  // Pipelined mode: replay the recorded per-fetch durations onto
  // stage_in_window concurrent channels (list scheduling: each fetch takes
  // the earliest-free channel, in issue order) to derive each cutout's
  // arrival on the sim clock, then hand DagManSim a ready time per compute
  // node — the node becomes dispatchable the moment its data lands, while
  // other galaxies are still in flight. Only the timeline changes; the
  // per-(node, attempt) failure draws are schedule-invariant.
  if (pipelined && !fetch_timeline.empty()) {
    const std::size_t window = std::max<std::size_t>(1, config_.stage_in_window);
    std::priority_queue<double, std::vector<double>, std::greater<>> channels;
    for (std::size_t c = 0; c < window; ++c) channels.push(0.0);
    std::map<std::string, double> arrival_ms;
    for (const auto& [lfn, dur_ms] : fetch_timeline) {
      const double start = channels.top();
      channels.pop();
      const double done = start + dur_ms;
      channels.push(done);
      arrival_ms[lfn] = done;
    }
    std::map<std::string, double> ready;
    for (const auto& [node_id, inputs] : trace.plan.data_inputs) {
      double node_ready_ms = 0.0;
      for (const std::string& lfn : inputs) {
        const auto it = arrival_ms.find(lfn);
        // Absent = cache hit or journal replay: resident before the run.
        if (it != arrival_ms.end()) {
          node_ready_ms = std::max(node_ready_ms, it->second);
        }
      }
      if (node_ready_ms > 0.0) ready[node_id] = node_ready_ms / 1000.0;
    }
    // Multi-pool plans insert stage-in transfers sourced at the cache site
    // for cutouts that are themselves still arriving from the archive: the
    // inter-site stream cannot start before its file lands in the cache.
    for (const std::string& tid : trace.plan.concrete.node_ids()) {
      const vds::DagNode* tn = trace.plan.concrete.node(tid);
      if (tn->type != vds::JobType::kTransfer ||
          tn->source_site != config_.cache_site) {
        continue;
      }
      const auto it = arrival_ms.find(tn->file);
      if (it != arrival_ms.end()) {
        double& slot = ready[tid];
        slot = std::max(slot, it->second / 1000.0);
      }
    }
    dagman.set_ready_times(std::move(ready));
  }
  // Row index of each galaxy's compute node, for the incremental merge.
  std::map<std::string, std::size_t> node_row;
  if (writer) {
    for (std::size_t i = 0; i < galaxy_ids.size(); ++i) {
      node_row["m_" + galaxy_ids[i]] = i;
    }
  }
  if (journal || config_.abort_after_nodes > 0 || writer) {
    dagman.set_node_callback([this, journal, ck, w = writer.get(),
                              &node_row](const grid::NodeResult& nr)
                                 -> Status {
      if (w) {
        // Final outcome for this galaxy's node: its catalog row can be
        // absorbed as soon as the kernel is also done. With rescue rounds
        // budgeted, a failure is NOT final — a later round may still
        // succeed, and mark_node_final is first-wins — so failed rows are
        // left for the post-drain sweep over the merged report.
        const auto it = node_row.find(nr.id);
        if (it != node_row.end()) {
          if (nr.outcome != grid::NodeOutcome::kFailed) {
            w->mark_node_final(it->second, false);
          } else if (config_.rescue_rounds == 0) {
            w->mark_node_final(it->second, true);
          }
        }
      }
      if (journal && nr.outcome == grid::NodeOutcome::kSucceeded &&
          !journal->has("node", ck + nr.id)) {
        if (const Status s = journal->append("node", ck + nr.id, ""); !s.ok()) {
          return s;
        }
      }
      ++nodes_completed_total_;
      if (config_.abort_after_nodes > 0 && !kill_fired_ &&
          nodes_completed_total_ >= config_.abort_after_nodes) {
        // Simulated submit-host death: the run aborts here, after the
        // completion above was journaled, so resume loses nothing. The kill
        // is one-shot — it takes down exactly the request whose DAG crosses
        // the threshold; later requests through the same (multi-tenant)
        // service run normally, as they would after a submit-host restart.
        kill_fired_ = true;
        return Error(ErrorCode::kAborted,
                     format("chaos kill after %zu node completions",
                            nodes_completed_total_));
      }
      return Status::Ok();
    });
  }

  // Journal-completed nodes are cut out of the DAG via the rescue machinery
  // before execution: a resumed run re-executes only the unfinished tail.
  std::map<std::string, grid::NodeResult> prior;
  if (journal) {
    for (const std::string& node_id : trace.plan.concrete.node_ids()) {
      if (!journal->has("node", ck + node_id)) continue;
      const vds::DagNode* n = trace.plan.concrete.node(node_id);
      grid::NodeResult r;
      r.id = node_id;
      r.outcome = grid::NodeOutcome::kSucceeded;
      if (n) r.site = n->site;
      prior[node_id] = std::move(r);
    }
  }
  trace.nodes_resumed = prior.size();
  // merge_node_outcomes rebuilds a report from per-node outcomes only, so
  // run-level counters are accumulated by hand across rescue rounds.
  std::size_t acc_retries = 0;
  std::size_t acc_stolen = 0;
  std::size_t acc_wan = 0;
  std::size_t acc_expired = 0;
  std::vector<std::string> acc_sites_lost;
  std::map<std::string, double> acc_busy;
  const auto absorb = [&](const grid::RunReport& rep) {
    acc_retries += rep.retries;
    acc_stolen += rep.stolen_jobs;
    acc_wan += rep.wan_bytes;
    acc_expired += rep.jobs_expired;
    acc_sites_lost.insert(acc_sites_lost.end(), rep.sites_lost.begin(),
                          rep.sites_lost.end());
    for (const auto& [s, t] : rep.site_busy_seconds) acc_busy[s] += t;
  };
  bool report_is_merged = false;
  const bool resumed_from_journal = !prior.empty();
  if (prior.empty()) {
    auto report = dagman.run(trace.plan.concrete);
    if (!report.ok()) return report.error();
    if (report->cancelled) {
      return Error(ErrorCode::kCancelled,
                   "workflow cancelled mid-execution: " + ctx.cancel.reason());
    }
    absorb(report.value());
    // Seed the outcome map too: rescue rounds merge against `prior`, and a
    // map missing the first run's successes would report them skipped.
    for (const grid::NodeResult& r : report->nodes) prior[r.id] = r;
    trace.execution = std::move(report.value());
  } else {
    record.messages.push_back(format("resuming: %zu of %zu nodes journal-complete",
                                     prior.size(),
                                     trace.plan.concrete.num_nodes()));
    trace.execution = grid::merge_node_outcomes(trace.plan.concrete, prior);
    report_is_merged = true;
  }
  // Rescue rounds. Journal resume keeps its single implicit round (the
  // pre-multi-pool behavior); config_.rescue_rounds budgets explicit rounds
  // for failure and whole-pool-outage recovery. Rounds reuse the same sim
  // engine, so latched dead pools and lifetime failure draws carry across;
  // the unfinished portion is re-mapped off dead pools before each rerun.
  std::size_t rounds_left =
      std::max<std::size_t>(config_.rescue_rounds, resumed_from_journal ? 1 : 0);
  // An expired or cancelled request must not burn rescue rounds: its nodes
  // were dropped deliberately, not lost to a failure worth recovering from.
  while (rounds_left > 0 && !trace.execution.workflow_succeeded &&
         acc_expired == 0 && !ctx.cancelled()) {
    --rounds_left;
    auto resume_dag = grid::make_rescue_dag(trace.plan.concrete, trace.execution);
    if (!resume_dag.ok()) return resume_dag.error();
    if (resume_dag->empty()) break;
    if (!dagman.dead_sites().empty()) {
      auto remap = pegasus::remap_rescue_sites(resume_dag.value(), grid_,
                                               dagman.dead_sites(), tc_, rls_,
                                               config_.cache_site);
      if (!remap.ok()) return remap.error();
      if (remap->compute_remapped > 0 || remap->transfers_retargeted > 0) {
        record.messages.push_back(
            format("rescue: re-mapped %zu jobs, re-pointed %zu transfers, "
                   "re-staged %zu inputs off %zu lost pool(s)",
                   remap->compute_remapped, remap->transfers_retargeted,
                   remap->inputs_restaged, dagman.dead_sites().size()));
      }
    }
    auto report = dagman.run(resume_dag.value());
    if (!report.ok()) return report.error();
    if (report->cancelled) {
      return Error(ErrorCode::kCancelled,
                   "rescue round cancelled mid-execution: " + ctx.cancel.reason());
    }
    absorb(report.value());
    for (const grid::NodeResult& r : report->nodes) prior[r.id] = r;
    trace.execution = grid::merge_node_outcomes(trace.plan.concrete, prior);
    report_is_merged = true;
  }
  if (report_is_merged) {
    trace.execution.retries = acc_retries;
    trace.execution.stolen_jobs = acc_stolen;
    trace.execution.wan_bytes = acc_wan;
    trace.execution.jobs_expired = acc_expired;
    trace.execution.sites_lost = std::move(acc_sites_lost);
    trace.execution.site_busy_seconds = std::move(acc_busy);
  }
  if (trace.execution.jobs_expired > 0) {
    // The deadline gate dropped part of the workflow: surface expiry instead
    // of materializing a catalog with silently missing galaxies. Journal
    // rows and node completions persisted so far are kept — a resubmission
    // with a fresh budget resumes from them.
    dag_span.count("jobs_expired",
                   static_cast<double>(trace.execution.jobs_expired));
    dag_span.end();
    record.messages.push_back(
        format("deadline: %zu compute node(s) expired before dispatch",
               trace.execution.jobs_expired));
    return Error(ErrorCode::kDeadlineExceeded,
                 format("deadline budget exhausted: %zu compute node(s) "
                        "expired before dispatch",
                        trace.execution.jobs_expired));
  }
  if (config_.tracer) {
    // Node executions are simulated, so their spans are recorded
    // retrospectively from the discrete-event report on the sim timeline.
    // Journal-resumed nodes (attempts == 0) never ran here — no span.
    for (const grid::NodeResult& r : trace.execution.nodes) {
      if (r.outcome == grid::NodeOutcome::kSkipped || r.attempts == 0) continue;
      config_.tracer->record_span(
          dag_span.id(), "dag.node", "grid", r.start_seconds * 1000.0,
          (r.end_seconds - r.start_seconds) * 1000.0,
          {{"attempts", static_cast<double>(r.attempts)},
           {"failed", r.outcome == grid::NodeOutcome::kFailed ? 1.0 : 0.0}},
          {{"node", r.id}, {"site", r.site}});
    }
  }
  dag_span.count("jobs", static_cast<double>(trace.execution.jobs_total));
  dag_span.end();
  (void)pegasus::commit_execution(trace.plan.concrete, trace.execution, rls_, grid_);
  // Record provenance of every product this run materialized.
  std::vector<std::string> succeeded;
  succeeded.reserve(trace.execution.nodes.size());
  for (const grid::NodeResult& r : trace.execution.nodes) {
    if (r.outcome == grid::NodeOutcome::kSucceeded) succeeded.push_back(r.id);
  }
  provenance_.record_execution(trace.plan.concrete, succeeded,
                               trace.execution.makespan_seconds);

  // (4e) Barrier for the pipelined kernels submitted during staging: the
  // planning/execution simulation above ran concurrently with the tail of
  // the real computation. kernel_wall_ms covers the full overlapped
  // stage-and-compute window.
  pool_.wait_idle();
  trace.kernel_wall_ms = wall_ms_since(stage_t0);

  // Grid-level failures (when injected) override kernel success: a job that
  // never ran produces no product.
  if (writer) {
    // Sweep rows whose node outcome never went through this run's event
    // loop — journal-resumed nodes and outcomes recovered by rescue-merge.
    // mark_node_final is idempotent, so callback-finalized rows are safe.
    for (std::size_t i = 0; i < galaxy_ids.size(); ++i) {
      if (writer->node_finalized(i)) continue;
      const grid::NodeResult* nr =
          trace.execution.result_for("m_" + galaxy_ids[i]);
      writer->mark_node_final(i,
                              nr && nr->outcome == grid::NodeOutcome::kFailed);
    }
  } else {
    for (std::size_t i = 0; i < galaxy_ids.size(); ++i) {
      const grid::NodeResult* nr = trace.execution.result_for("m_" + galaxy_ids[i]);
      if (nr && nr->outcome == grid::NodeOutcome::kFailed) {
        results[i].params.valid = false;
        results[i].params.failure_reason = "grid job failed";
      }
    }
  }
  for (const core::GalMorphResult& r : results) {
    if (r.params.valid) {
      ++trace.valid_results;
    } else {
      ++trace.invalid_results;
    }
  }

  // (5) Materialize, register, and expose the output VOTable. The streamed
  // document is a byte-identical decomposition of the concat path (shared
  // schema, shared row serialization through VotableXmlStream).
  if (writer) {
    state_->results[out_lfn] = writer->finish();
  } else {
    const votable::Table out_table = core::concat_results(results, out_lfn);
    state_->results[out_lfn] = votable::to_votable_xml(out_table);
  }
  rls_.add(out_lfn, config_.cache_site, record.result_lfn);
  grid_.put_file(config_.cache_site, out_lfn, state_->results[out_lfn].size());
  if (journal) {
    // The finished catalog is the cluster's terminal record: a resumed
    // campaign serves these bytes directly (step 2b) instead of re-running.
    (void)journal->append("cluster", out_lfn, state_->results[out_lfn]);
  }

  // Barriered: staging bills sequentially, then the DAG runs. Pipelined:
  // staging arrivals are folded into the makespan as per-node ready times,
  // so the makespan alone IS the end-to-end window (fetch latency that
  // overlapped kernel time is not billed twice).
  trace.total_sim_seconds =
      pipelined ? trace.execution.makespan_seconds
                : trace.image_fetch_sim_ms / 1000.0 +
                      trace.execution.makespan_seconds;
  req.count("valid", static_cast<double>(trace.valid_results));
  req.count("invalid", static_cast<double>(trace.invalid_results));
  record.state = "completed";
  record.messages.push_back(
      format("job completed: %zu valid, %zu invalid, makespan %.1f sim-s",
             trace.valid_results, trace.invalid_results,
             trace.execution.makespan_seconds));
  return Status::Ok();
}

Expected<MorphologyService::PollResult> MorphologyService::poll(
    const std::string& status_url) const {
  auto response = client_.get(status_url);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kServiceUnavailable,
                 format("status poll returned %d", response->status));
  }
  PollResult out;
  for (const std::string& line : split(response->body_text(), '\n')) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "state") {
      out.state = value;
    } else if (key == "result") {
      out.result_url = value;
    } else if (key == "message") {
      out.messages.push_back(value);
    }
  }
  return out;
}

const std::string* MorphologyService::result_xml(const std::string& out_lfn) const {
  const auto it = state_->results.find(out_lfn);
  return it == state_->results.end() ? nullptr : &it->second;
}

Expected<votable::Table> MorphologyService::fetch_result(
    const std::string& result_url) const {
  auto response = client_.get(result_url);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error(ErrorCode::kServiceUnavailable,
                 format("result fetch returned %d", response->status));
  }
  return votable::from_votable_xml(response->body_text());
}

void MorphologyService::register_metrics(obs::MetricsRegistry& registry) const {
  services::register_metrics(registry, cache_, "cache.replica");
  services::register_metrics(registry, client_, "client.compute");
  services::register_metrics(registry, pool_, "pool");
  const std::atomic<std::size_t>* inflight = &staging_inflight_;
  registry.register_gauge("staging.inflight", [inflight] {
    return static_cast<double>(inflight->load(std::memory_order_relaxed));
  });
}

const ServiceTrace* MorphologyService::trace(const std::string& request_id) const {
  const auto it = state_->requests.find(request_id);
  return it == state_->requests.end() ? nullptr : &it->second.trace;
}

const ServiceTrace* MorphologyService::last_trace() const {
  if (state_->order.empty()) return nullptr;
  return trace(state_->order.back());
}

}  // namespace nvo::portal
