// The user portal (paper §4.2, Fig. 5): cluster selection from an internal
// catalog, large-scale image search over three SIA archives, galaxy-catalog
// assembly from two Cone Search services joined with the generic table-join
// library, cutout-reference retrieval via SIA, submission to the compute
// web service with status polling, and the final merge of computed
// morphology back into the catalog. Both the paper's per-galaxy SIA loop
// and the batched single-cone variant it wishes for are implemented, as is
// the sync-vs-async submission distinction of §4.3.1 item 2.
#pragma once

#include <string>
#include <vector>

#include "common/expected.hpp"
#include "obs/trace.hpp"
#include "portal/compute_service.hpp"
#include "services/federation.hpp"
#include "services/http.hpp"
#include "services/registry.hpp"
#include "services/resilience.hpp"
#include "sky/coords.hpp"
#include "votable/table.hpp"

namespace nvo::portal {

/// One entry of the portal's internal cluster catalog ("the portal first
/// allows a user to select from a list of galaxy clusters ... selection
/// causes the portal to look up the cluster's spherical position in an
/// internal catalog").
struct ClusterEntry {
  std::string name;
  sky::Equatorial position;
  double redshift = 0.0;
  double search_radius_deg = 0.2;
};

/// How the portal retrieves cutout access references (the application
/// bottleneck of §4.2). kPerGalaxy is the paper's actual loop — one SIA
/// cone per galaxy. kWideCone is the single cluster-wide query it wished
/// for. kCoalesced groups nearby galaxies into spatial patches and issues
/// one query per patch: round-trips amortize like the wide cone while each
/// response stays proportional to the patch, not the cluster.
enum class CutoutQueryMode { kPerGalaxy, kCoalesced, kWideCone };

struct PortalConfig {
  CutoutQueryMode cutout_query = CutoutQueryMode::kCoalesced;
  double cutout_patch_deg = 0.1;      ///< kCoalesced patch cell size
  double cutout_size_deg = 64.0 / 3600.0;
  int poll_limit = 64;                ///< max status polls before giving up
  services::RetryPolicy retry;        ///< per-request tolerance for all queries
  services::BreakerPolicy breaker;
  /// Optional trace-span sink for the request path (null = no tracing).
  /// Must outlive the portal.
  obs::Tracer* tracer = nullptr;
};

/// Outcome of one archive interaction within an analysis run: how hard the
/// resilience layer had to work and whether the stage ultimately got its
/// data. `skipped_reason` is non-empty when the stage continued without this
/// archive (graceful degradation).
struct ArchiveStatus {
  std::string archive;             ///< human name ("NED", "CNOC", ...)
  std::string endpoint;            ///< base URL queried
  std::uint64_t attempted = 0;     ///< HTTP attempts issued (incl. retries)
  std::uint64_t succeeded = 0;     ///< attempts that returned cleanly
  std::uint64_t retries = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t failovers = 0;     ///< requests served by the mirror
  std::size_t rows = 0;            ///< table rows / records contributed
  std::string skipped_reason;      ///< "" when the archive delivered

  bool degraded() const { return !skipped_reason.empty(); }
};

/// Per-stage accounting for one analysis run (simulated milliseconds from
/// the fabric's performance models, plus counts).
struct PortalTrace {
  double image_search_ms = 0.0;   ///< the 3 large-scale SIA queries
  double catalog_build_ms = 0.0;  ///< the 2 cone searches + join
  double cutout_query_ms = 0.0;   ///< SIA metadata queries for cutout refs
  std::size_t cutout_queries = 0;
  double compute_wait_ms = 0.0;   ///< simulated service latency + polls
  std::size_t polls = 0;
  double merge_ms = 0.0;          ///< final join (local, wall-clock)
  std::size_t galaxies = 0;
  std::size_t valid = 0;
  std::size_t invalid = 0;
  /// Compute-service request id ("req-N") of this run's submission; empty
  /// when the run failed before reaching the compute stage. Callers use
  /// MorphologyService::trace(id) with this instead of last_trace(), which
  /// is wrong once runs from several portals interleave on one service.
  std::string compute_request_id;

  // Resilience accounting, summed over the portal's archive interactions.
  std::vector<ArchiveStatus> archives;
  std::uint64_t retries = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t failovers = 0;

  double total_ms() const {
    return image_search_ms + catalog_build_ms + cutout_query_ms + compute_wait_ms +
           merge_ms;
  }
  /// Archives that did not deliver (skipped or failed over entirely).
  std::size_t archives_degraded() const {
    std::size_t n = 0;
    for (const ArchiveStatus& a : archives) n += a.degraded() ? 1 : 0;
    return n;
  }
};

class Portal {
 public:
  Portal(services::HttpFabric& fabric, const services::Federation& federation,
         MorphologyService& compute, PortalConfig config = {});

  /// Populates the internal cluster list.
  void add_cluster(ClusterEntry entry);
  const std::vector<ClusterEntry>& clusters() const { return clusters_; }

  /// Registers the federation + compute endpoints in a service registry
  /// (the discovery capability the paper's portal lacked).
  void publish_to_registry(services::Registry& registry) const;

  /// Stage: the three large-scale image searches (DSS optical, ROSAT and
  /// Chandra X-ray). Returns access URLs; per Fig. 5, "links to these
  /// images are returned to the user".
  struct ImageLinks {
    std::vector<std::string> optical;
    std::vector<std::string> xray;
  };
  Expected<ImageLinks> find_large_scale_images(const std::string& cluster_name,
                                               PortalTrace* trace = nullptr);

  /// Stage: galaxy catalog assembly — NED + CNOC cone searches joined on id
  /// via the generic join library.
  Expected<votable::Table> build_galaxy_catalog(const std::string& cluster_name,
                                                PortalTrace* trace = nullptr);

  /// Stage: merge cutout access references into the catalog (adds the
  /// `cutout_url` column). Honors config.cutout_query.
  Expected<votable::Table> attach_cutout_refs(votable::Table catalog,
                                              const std::string& cluster_name,
                                              PortalTrace* trace = nullptr);

  /// Full §2-strategy run: images, catalog, cutouts, compute, merge.
  ///
  /// Unlike an Expected<...>, the outcome always carries the PortalTrace —
  /// on failure the per-archive ArchiveStatus entries accumulated up to the
  /// failing stage survive, so a dual-archive outage is diagnosable from
  /// the outcome instead of from a bare error string. `ok()`, `error()`
  /// and `operator->` keep the former Expected call sites working.
  struct AnalysisOutcome {
    votable::Table catalog;  ///< galaxy catalog + morphology columns
    ImageLinks images;
    PortalTrace trace;       ///< populated even when the run fails
    Status status;           ///< Ok when the full pipeline delivered

    bool ok() const { return status.ok(); }
    const Error& error() const { return status.error(); }
    AnalysisOutcome* operator->() { return this; }
    const AnalysisOutcome* operator->() const { return this; }
  };
  AnalysisOutcome run_analysis(const std::string& cluster_name);

  /// The portal's resilient HTTP client (retry/breaker/failover state).
  services::ResilientClient& client() { return client_; }

 private:
  const ClusterEntry* find_cluster(const std::string& name) const;

  /// Snapshot-diff helper: builds an ArchiveStatus from the client's
  /// per-endpoint stats accumulated since `before`.
  ArchiveStatus archive_status(const std::string& archive,
                               const std::string& base_url,
                               const services::EndpointStats& before) const;
  /// Appends `status` to the trace and folds its counters into the totals.
  static void record_archive(PortalTrace* trace, ArchiveStatus status);

  services::HttpFabric& fabric_;
  services::Federation federation_;
  MorphologyService& compute_;
  PortalConfig config_;
  services::ResilientClient client_;
  std::vector<ClusterEntry> clusters_;
};

}  // namespace nvo::portal
