// The galaxy-morphology compute web service (paper §4.3, Fig. 6): "the type
// of highly-specialized service that we expect to see when the NVO
// environment reaches its most mature state." Protocol, as in the paper:
//
//   1. The portal POSTs an input VOTable + desired output name; the service
//      assigns a unique request id and immediately returns a status URL.
//   2. The service checks the RLS for the output VOTable; a hit completes
//      the request at once (result caching).
//   3. Otherwise it downloads every galaxy image into its local cache and
//      registers them in the RLS (so later requests use GridFTP-class local
//      access instead of SIA).
//   4. The input VOTable is transformed into a VDL derivation file; Chimera
//      composes the abstract workflow; Pegasus reduces/maps it; DAGMan
//      executes it (simulated timing + real morphology computation).
//   5. The output VOTable is registered in the RLS; polls of the status URL
//      now return "job completed" plus the result URL.
//
// Per-galaxy failures (corrupted cutouts) yield validity-flagged rows, not
// request failures (§4.3.1 item 4).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "core/galmorph.hpp"
#include "grid/checkpoint.hpp"
#include "grid/dagman.hpp"
#include "grid/grid.hpp"
#include "grid/threadpool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pegasus/planner.hpp"
#include "pegasus/rls.hpp"
#include "pegasus/tc.hpp"
#include "services/http.hpp"
#include "services/lifecycle.hpp"
#include "services/replica_cache.hpp"
#include "services/resilience.hpp"
#include "vds/chimera.hpp"
#include "vds/provenance.hpp"
#include "votable/table.hpp"

namespace nvo::portal {

/// How the simulated workflow execution is scheduled against image staging.
enum class ExecutionMode {
  /// Phase barrier: all images stage (sequentially on the sim clock), then
  /// the DAG runs. The original executor; kept as the overlap baseline and
  /// as the byte-identity oracle for the pipelined path.
  kBarriered,
  /// Event-driven dataflow: stage-in requests occupy a bounded window of
  /// concurrent channels on the sim clock, each galaxy's compute node
  /// becomes dispatchable the moment its cutout lands in the replica cache
  /// (ready-on-data edges through DagManSim::set_ready_times), and finished
  /// rows are absorbed into the output VOTable incrementally while other
  /// galaxies are still staging. Science output is byte-identical to
  /// kBarriered; only the simulated timeline changes.
  kPipelined,
};

struct ComputeServiceConfig {
  std::string host = "galmorph.isi.sim";  ///< service host on the fabric
  std::string cache_site = "isi";         ///< grid site holding the image cache
  core::GalMorphArgs default_args;        ///< cosmology/photometry defaults
  pegasus::PlannerConfig planner;         ///< site/replica policies etc.
  grid::JobCostModel cost;                ///< simulated job durations
  grid::FailureModel failure;             ///< injected grid failures
  std::size_t compute_threads = 2;        ///< real kernel parallelism
  std::uint64_t seed = 17;
  services::RetryPolicy retry;            ///< image staging / poll tolerance
  services::BreakerPolicy breaker;
  /// Failover mirrors for staging fetches (archive host -> mirror host).
  std::map<std::string, std::string> mirrors;
  /// Byte-budgeted LRU replica store backing the image cache. Evicted LFNs
  /// are deregistered from the RLS/grid so plans never rely on them.
  services::ReplicaCacheConfig replica_cache;
  /// Bound on staged-but-uncomputed images in flight: the staging loop
  /// blocks once this many kernel tasks are pending, keeping pinned cutout
  /// memory proportional to the bound rather than the cluster size.
  std::size_t prefetch_depth = 32;
  /// Execution scheduling mode (see ExecutionMode). Pipelined is the
  /// default; barriered remains for benchmarking and identity checks.
  ExecutionMode execution_mode = ExecutionMode::kPipelined;
  /// Pipelined mode: number of concurrent stage-in channels on the sim
  /// clock. Fetch latencies overlap each other up to this bound (and all of
  /// them overlap kernel time), modeling a client that keeps this many
  /// transfers in flight against the archive.
  std::size_t stage_in_window = 8;
  /// Optional trace-span sink (staging, planning, DAGMan nodes, kernels).
  /// Must outlive the service.
  obs::Tracer* tracer = nullptr;
  /// Optional durable checkpoint journal (must outlive the service). When
  /// set, staged-image registrations, DAG node completions, and per-galaxy
  /// morphology rows are persisted as they happen, and process() resumes
  /// from whatever the journal already holds: journaled rows skip staging
  /// and the kernel, journaled node completions are cut out of the DAG via
  /// the rescue machinery, and the merged report covers both halves.
  grid::CheckpointJournal* journal = nullptr;
  /// Chaos kill injection: abort DAG execution with kAborted once this many
  /// node completions have been counted across the service's lifetime
  /// (0 disables). Simulates the submit host dying mid-DAG so the
  /// checkpoint/resume path can be exercised deterministically.
  std::size_t abort_after_nodes = 0;
  /// Rescue-DAG rounds after a failed execution (0 preserves the old
  /// behavior: no in-request rescue; journal resume still performs its
  /// single implicit round). Each round rebuilds the unfinished portion,
  /// re-maps it off any pools the executor has latched dead (site-outage
  /// chaos), and reruns it on the same sim engine.
  std::size_t rescue_rounds = 0;
  /// Straggler rebalancing in the simulated executor: idle pools pull
  /// queued-but-unstarted jobs from backlogged ones, gated on the thief
  /// site having the transformation installed (TC lookup).
  bool work_stealing = false;
  /// Hedged stage-ins (pipelined executor only): once enough fetch
  /// durations have been observed, a fetch slower than the hedge delay —
  /// the `hedge_quantile` of a service-level rolling window of primary
  /// durations (learned across requests, so a warm service protects a new
  /// request's first fetches too) — is re-issued against the archive's
  /// registered mirror. First verified success wins:
  /// the cutout's effective arrival on the stage-in channels is
  /// min(primary, delay + hedge), and the loser's bytes are charged to
  /// `hedge_wasted_bytes` (the stream is cancelled, but its WAN transfer
  /// already happened). Requires a mirror in `mirrors` for the archive
  /// host; fetches without one are never hedged.
  bool hedge_stage_ins = false;
  double hedge_quantile = 0.95;
  std::size_t hedge_min_samples = 8;
};

/// Everything measured about one request (drives the Fig. 6 benchmark).
struct ServiceTrace {
  std::string request_id;
  std::string cluster_name;
  bool cache_hit = false;          ///< output VOTable already in the RLS
  bool journal_hit = false;        ///< catalog served from the checkpoint journal
  std::size_t galaxies = 0;
  std::size_t images_fetched = 0;  ///< downloaded via SIA this request
  std::size_t images_cached = 0;   ///< served from the local cache
  double image_fetch_sim_ms = 0.0; ///< simulated SIA download time
  std::uint64_t staging_retries = 0;    ///< HTTP re-attempts while staging
  std::uint64_t staging_failovers = 0;  ///< staging fetches served by a mirror
  std::uint64_t staging_breaker_trips = 0;
  std::uint64_t staging_integrity_failures = 0;  ///< corrupted payloads caught
  std::uint64_t staging_quarantine_skips = 0;    ///< fetches rerouted to mirror
  std::uint64_t hedged_fetches = 0;  ///< stage-ins that issued a mirror hedge
  std::uint64_t hedge_wins = 0;      ///< hedges whose arrival beat the primary
  /// Loser-transfer bytes: WAN traffic the slower copy of a hedged fetch
  /// had already moved when it was cancelled. The honest cost of hedging.
  std::size_t hedge_wasted_bytes = 0;
  double hedge_delay_ms = 0.0;       ///< last quantile-derived hedge delay
  /// Archive payload bytes fetched while staging (primary + hedge streams).
  std::size_t staging_wan_bytes = 0;
  /// p99 of effective per-fetch stage-in durations (simulated ms) — the
  /// tail the hedging defends; 0 when nothing was fetched.
  double stage_in_p99_ms = 0.0;
  std::size_t rows_resumed = 0;   ///< morphology rows loaded from the journal
  std::size_t nodes_resumed = 0;  ///< DAG nodes skipped as journal-completed
  double vdl_bytes = 0.0;
  double compose_wall_ms = 0.0;
  double plan_wall_ms = 0.0;
  /// Real morphology computation. With pipelined staging the kernels run
  /// concurrently with image fetches, so this measures the full overlapped
  /// stage-and-compute window (fetch start to last kernel done).
  double kernel_wall_ms = 0.0;
  pegasus::PlanResult plan;
  grid::RunReport execution;       ///< simulated DAGMan run
  std::size_t valid_results = 0;
  std::size_t invalid_results = 0;
  /// End-to-end simulated latency the portal would observe (zero on a
  /// cache hit). Barriered: sequential image staging + workflow makespan.
  /// Pipelined: the makespan alone — staging arrivals are folded into it
  /// as per-node ready times, so overlapped fetch latency is not billed.
  double total_sim_seconds = 0.0;
};

class MorphologyService {
 public:
  /// Registers /status and /results routes on the fabric. The grid, RLS,
  /// and TC references must outlive the service; galMorph is installed at
  /// every grid site in the TC if absent.
  MorphologyService(services::HttpFabric& fabric, grid::Grid& grid,
                    pegasus::ReplicaLocationService& rls,
                    pegasus::TransformationCatalog& tc, ComputeServiceConfig config);

  /// The paper's client call: galMorphCompute(vot, outVOTName) -> status
  /// URL. The input table needs `id`, `redshift`, and `cutout_url` columns;
  /// `out_name` is the logical name of the output VOTable (named after the
  /// cluster). The optional request context carries the caller's remaining
  /// deadline budget and cancellation token through staging fetches, kernel
  /// tasks and DAG dispatch; an expired budget fails the request with state
  /// "expired" (journal rows persisted so far are kept — a resubmission
  /// resumes instead of recomputing), a cancelled token with "cancelled".
  /// Neither outcome materializes or memoizes a catalog.
  Expected<std::string> gal_morph_compute(const votable::Table& input,
                                          const std::string& out_name,
                                          const services::RequestContext& ctx = {});

  /// Client-side poll of a status URL.
  struct PollResult {
    std::string state;  ///< "running", "completed", "failed"
    std::string result_url;
    std::vector<std::string> messages;
  };
  Expected<PollResult> poll(const std::string& status_url) const;

  /// Client-side fetch of a completed result.
  Expected<votable::Table> fetch_result(const std::string& result_url) const;

  /// Raw XML bytes of a materialized output VOTable (exactly what /results
  /// serves); nullptr when the LFN is unknown. Byte-identity checks compare
  /// these rather than re-serialized tables.
  const std::string* result_xml(const std::string& out_lfn) const;

  /// Trace lookup for benchmarks (by request id). Null when unknown.
  const ServiceTrace* trace(const std::string& request_id) const;
  /// Trace of the most recent request.
  const ServiceTrace* last_trace() const;

  /// Provenance of everything this service has materialized: per-galaxy
  /// results and output VOTables, with the derivation parameters and
  /// execution sites (GriPhyN's "virtual data and provenance").
  const vds::ProvenanceCatalog& provenance() const { return provenance_; }

  const ComputeServiceConfig& config() const { return config_; }

  /// True once the one-shot abort_after_nodes chaos kill has fired.
  bool kill_fired() const { return kill_fired_; }

  /// The service's resilient HTTP client (staging + poll tolerance state).
  const services::ResilientClient& client() const { return client_; }

  /// The sharded LRU replica store (hit/miss/eviction/bytes metrics).
  const services::ReplicaCache& replica_cache() const { return cache_; }

  /// The service-lifetime kernel pool (queue/active/idle observables).
  const grid::ThreadPool& pool() const { return pool_; }

  /// Registers this service's metrics (staging client, replica cache,
  /// kernel pool) under "client.compute.*", "cache.replica.*" and "pool.*",
  /// plus "staging.inflight" (live staged-but-uncomputed image count). The
  /// service must outlive the registry's use.
  void register_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct RequestRecord {
    std::string id;
    std::string state = "running";
    std::vector<std::string> messages;
    std::string result_lfn;
    ServiceTrace trace;
  };

  Status process(RequestRecord& record, const votable::Table& input,
                 const std::string& out_name, const services::RequestContext& ctx);

  services::HttpFabric& fabric_;
  grid::Grid& grid_;
  pegasus::ReplicaLocationService& rls_;
  pegasus::TransformationCatalog& tc_;
  ComputeServiceConfig config_;
  // Mutable: poll/fetch_result are logically const reads but go through the
  // client's retry/breaker state.
  mutable services::ResilientClient client_;
  IdGenerator ids_;
  vds::ProvenanceCatalog provenance_;
  // Service-lifetime compute pool: worker threads persist across requests
  // (and with them the kernel's thread-local workspaces), instead of being
  // spawned and joined inside every request.
  grid::ThreadPool pool_;
  // Intra-kernel executor handed to run_gal_morph for large (>= 128px)
  // cutouts: tiled kernel stages fan back out over the same pool via
  // parallel_for_shared, which is safe to enter from a pool worker (the
  // worker itself drains chunks, so a fully-busy pool cannot deadlock).
  core::ParallelFor tile_executor_;
  // Sharded byte-budgeted LRU image store replacing the old unbounded map.
  // Entries are registered in the RLS/grid on insert and deregistered on
  // eviction, so Pegasus reduction sees exactly what is resident.
  services::ReplicaCache cache_;
  // Evictions of LFNs staged by the active request are deferred until the
  // request's plan is committed: the RLS must keep advertising a replica
  // the in-flight workflow references, or a starved budget would fail the
  // feasibility check instead of merely running cache-cold. Flushed (for
  // entries still non-resident) when the request completes.
  bool defer_evictions_ = false;
  std::unordered_set<std::string> request_lfns_;
  std::vector<std::string> deferred_evictions_;
  /// Node completions across the service's lifetime; drives the chaos
  /// kill counter (ComputeServiceConfig::abort_after_nodes).
  std::size_t nodes_completed_total_ = 0;
  /// The abort_after_nodes kill has fired. One-shot: only the request in
  /// flight when the threshold is crossed aborts; subsequent requests
  /// (other tenants through a shared service) proceed normally.
  bool kill_fired_ = false;
  /// Staged-but-uncomputed images currently pinned for pending kernel
  /// tasks (the prefetch_depth bound's live occupancy). Atomic so the
  /// "staging.inflight" gauge can read it while pool workers decrement.
  std::atomic<std::size_t> staging_inflight_{0};
  /// Rolling window of primary (unhedged) stage-in durations across the
  /// service's lifetime — the sample set the hedge delay is derived from.
  /// Service-level on purpose: the delay learned on one request protects
  /// the next one's earliest fetches, instead of re-warming per request.
  /// Bounded (oldest dropped) so the delay tracks current archive weather.
  std::vector<double> hedge_history_;

  // Shared with fabric handler closures.
  struct State {
    std::map<std::string, RequestRecord> requests;          // id -> record
    std::map<std::string, std::string> results;             // lfn -> VOTable XML
    std::vector<std::string> order;                         // request ids, oldest first
  };
  std::shared_ptr<State> state_;
};

}  // namespace nvo::portal
