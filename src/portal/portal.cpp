#include "portal/portal.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <utility>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "services/cone_search.hpp"
#include "services/sia.hpp"
#include "sky/spatial_index.hpp"
#include "votable/table_ops.hpp"

namespace nvo::portal {

namespace {
double wall_ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

std::string host_of(const std::string& base_url) {
  auto url = services::Url::parse(base_url);
  return url.ok() ? url->host : std::string();
}

services::EndpointStats stats_snapshot(const services::ResilientClient& client,
                                       const std::string& base_url) {
  const services::EndpointStats* p = client.stats_for(host_of(base_url));
  return p ? *p : services::EndpointStats{};
}
}  // namespace

Portal::Portal(services::HttpFabric& fabric, const services::Federation& federation,
               MorphologyService& compute, PortalConfig config)
    : fabric_(fabric),
      federation_(federation),
      compute_(compute),
      config_(std::move(config)),
      client_(fabric, config_.retry, config_.breaker, "portal") {
  if (!federation_.mirror_host.empty()) {
    client_.add_mirror(services::Federation::kMastHost, federation_.mirror_host);
  }
}

ArchiveStatus Portal::archive_status(const std::string& archive,
                                     const std::string& base_url,
                                     const services::EndpointStats& before) const {
  ArchiveStatus s;
  s.archive = archive;
  s.endpoint = base_url;
  services::EndpointStats after;
  if (const services::EndpointStats* p = client_.stats_for(host_of(base_url))) {
    after = *p;
  }
  s.attempted = after.attempts - before.attempts;
  s.succeeded = after.successes - before.successes;
  s.retries = after.retries - before.retries;
  s.breaker_trips = after.breaker_trips - before.breaker_trips;
  s.failovers = after.failovers - before.failovers;
  return s;
}

void Portal::record_archive(PortalTrace* trace, ArchiveStatus status) {
  if (!trace) return;
  trace->retries += status.retries;
  trace->breaker_trips += status.breaker_trips;
  trace->failovers += status.failovers;
  trace->archives.push_back(std::move(status));
}

void Portal::add_cluster(ClusterEntry entry) { clusters_.push_back(std::move(entry)); }

const ClusterEntry* Portal::find_cluster(const std::string& name) const {
  for (const ClusterEntry& c : clusters_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void Portal::publish_to_registry(services::Registry& registry) const {
  using services::Capability;
  using services::ServiceRecord;
  const auto add = [&](const char* ident, const char* title, const char* publisher,
                       Capability cap, const std::string& url, const char* band) {
    ServiceRecord r;
    r.identifier = ident;
    r.title = title;
    r.publisher = publisher;
    r.capability = cap;
    r.base_url = url;
    r.waveband = band;
    (void)registry.add(std::move(r));
  };
  add("ivo://sim.cda/sia", "Chandra Data Archive", "Chandra X-ray Center",
      Capability::kSimpleImageAccess, federation_.chandra_sia, "x-ray");
  add("ivo://sim.heasarc/rosat", "ROSAT X-ray data", "NASA HEASARC",
      Capability::kSimpleImageAccess, federation_.rosat_sia, "x-ray");
  add("ivo://sim.ipac/ned", "NASA Extragalactic Database", "NASA IPAC",
      Capability::kConeSearch, federation_.ned_cone, "optical");
  add("ivo://sim.cadc/cnoc-sia", "CNOC Survey images", "CADC",
      Capability::kSimpleImageAccess, federation_.cnoc_sia, "optical");
  add("ivo://sim.cadc/cnoc-cone", "CNOC Survey catalog", "CADC",
      Capability::kConeSearch, federation_.cnoc_cone, "optical");
  add("ivo://sim.mast/dss", "Digitized Sky Survey", "MAST",
      Capability::kSimpleImageAccess, federation_.dss_sia, "optical");
  add("ivo://sim.mast/cutout", "DSS galaxy cutout service", "MAST",
      Capability::kCutout, federation_.cutout_sia, "optical");
  add("ivo://sim.isi/galmorph", "Galaxy morphology compute service", "USC/ISI",
      Capability::kCompute, "http://" + compute_.config().host + "/status", "");
}

Expected<Portal::ImageLinks> Portal::find_large_scale_images(
    const std::string& cluster_name, PortalTrace* trace) {
  const ClusterEntry* cluster = find_cluster(cluster_name);
  if (!cluster) return Error(ErrorCode::kNotFound, "unknown cluster " + cluster_name);

  ImageLinks links;
  obs::Span stage = obs::start_span(config_.tracer, "portal.image_search", "portal");
  const double before = fabric_.metrics().total_elapsed_ms;
  // Optical: DSS. X-ray: ROSAT + Chandra. An archive being down is not
  // fatal — the analysis can proceed without a large-scale image.
  {
    obs::Span q = obs::start_span(config_.tracer, "query.DSS", "archive");
    const auto snap = stats_snapshot(client_, federation_.dss_sia);
    auto dss = services::sia_query(client_, federation_.dss_sia, cluster->position,
                                   cluster->search_radius_deg * 2.0);
    ArchiveStatus status = archive_status("DSS", federation_.dss_sia, snap);
    if (dss.ok()) {
      status.rows = dss->size();
      for (const auto& r : dss.value()) links.optical.push_back(r.access_url);
    } else {
      status.skipped_reason = dss.error().to_string();
      log_warn("portal", "DSS SIA failed: " + dss.error().to_string());
      q.note("skipped", status.skipped_reason);
    }
    q.count("attempts", static_cast<double>(status.attempted));
    q.count("retries", static_cast<double>(status.retries));
    q.count("rows", static_cast<double>(status.rows));
    record_archive(trace, std::move(status));
  }
  const std::pair<const char*, const std::string*> xray_archives[] = {
      {"ROSAT", &federation_.rosat_sia}, {"Chandra", &federation_.chandra_sia}};
  for (const auto& [name, base] : xray_archives) {
    obs::Span q =
        obs::start_span(config_.tracer, std::string("query.") + name, "archive");
    const auto snap = stats_snapshot(client_, *base);
    auto xr = services::sia_query(client_, *base, cluster->position,
                                  cluster->search_radius_deg * 2.0);
    ArchiveStatus status = archive_status(name, *base, snap);
    if (xr.ok()) {
      status.rows = xr->size();
      for (const auto& r : xr.value()) links.xray.push_back(r.access_url);
    } else {
      status.skipped_reason = xr.error().to_string();
      log_warn("portal", "X-ray SIA failed: " + xr.error().to_string());
      q.note("skipped", status.skipped_reason);
    }
    q.count("attempts", static_cast<double>(status.attempted));
    q.count("retries", static_cast<double>(status.retries));
    q.count("rows", static_cast<double>(status.rows));
    record_archive(trace, std::move(status));
  }
  if (trace) trace->image_search_ms += fabric_.metrics().total_elapsed_ms - before;
  return links;
}

Expected<votable::Table> Portal::build_galaxy_catalog(const std::string& cluster_name,
                                                      PortalTrace* trace) {
  const ClusterEntry* cluster = find_cluster(cluster_name);
  if (!cluster) return Error(ErrorCode::kNotFound, "unknown cluster " + cluster_name);

  obs::Span stage = obs::start_span(config_.tracer, "portal.catalog_build", "portal");
  const double before = fabric_.metrics().total_elapsed_ms;
  obs::Span ned_span = obs::start_span(config_.tracer, "query.NED", "archive");
  const auto ned_snap = stats_snapshot(client_, federation_.ned_cone);
  auto ned = services::cone_search(client_, federation_.ned_cone, cluster->position,
                                   cluster->search_radius_deg);
  ArchiveStatus ned_status = archive_status("NED", federation_.ned_cone, ned_snap);
  if (ned.ok()) ned_status.rows = ned->num_rows();
  ned_span.count("attempts", static_cast<double>(ned_status.attempted));
  ned_span.count("retries", static_cast<double>(ned_status.retries));
  ned_span.count("rows", static_cast<double>(ned_status.rows));
  ned_span.end();
  obs::Span cnoc_span = obs::start_span(config_.tracer, "query.CNOC", "archive");
  const auto cnoc_snap = stats_snapshot(client_, federation_.cnoc_cone);
  auto cnoc = services::cone_search(client_, federation_.cnoc_cone, cluster->position,
                                    cluster->search_radius_deg);
  ArchiveStatus cnoc_status = archive_status("CNOC", federation_.cnoc_cone, cnoc_snap);
  if (cnoc.ok()) cnoc_status.rows = cnoc->num_rows();
  cnoc_span.count("attempts", static_cast<double>(cnoc_status.attempted));
  cnoc_span.count("retries", static_cast<double>(cnoc_status.retries));
  cnoc_span.count("rows", static_cast<double>(cnoc_status.rows));
  cnoc_span.end();

  // Graceful degradation: either survey alone still yields a usable catalog
  // (both carry id/ra/dec); only losing both archives is fatal.
  votable::Table catalog;
  if (ned.ok() && cnoc.ok() && cnoc->num_rows() > 0) {
    // The generic join the paper calls for: NED brings position/redshift/
    // magnitude, CNOC adds velocity and color. Left join keeps galaxies the
    // second survey missed.
    auto joined = votable::join(ned.value(), cnoc.value(), "id", "id",
                                votable::JoinKind::kLeft);
    if (!joined.ok()) return joined.error();
    catalog = std::move(joined.value());
  } else if (ned.ok()) {
    if (!cnoc.ok()) {
      cnoc_status.skipped_reason = cnoc.error().to_string();
      log_warn("portal", "CNOC cone search failed (continuing with NED only): " +
                             cnoc.error().to_string());
    }
    catalog = std::move(ned.value());
  } else if (cnoc.ok() && cnoc->num_rows() > 0) {
    ned_status.skipped_reason = ned.error().to_string();
    log_warn("portal", "NED cone search failed (continuing with CNOC only): " +
                           ned.error().to_string());
    catalog = std::move(cnoc.value());
  } else {
    // Dual-archive outage: record WHY each archive delivered nothing, so
    // the failure is diagnosable from the outcome's ArchiveStatus entries.
    ned_status.skipped_reason = ned.error().to_string();
    cnoc_status.skipped_reason =
        cnoc.ok() ? "empty result" : cnoc.error().to_string();
    record_archive(trace, std::move(ned_status));
    record_archive(trace, std::move(cnoc_status));
    if (trace) trace->catalog_build_ms += fabric_.metrics().total_elapsed_ms - before;
    return Error(ErrorCode::kServiceUnavailable,
                 "all catalog archives unavailable for " + cluster_name + ": NED: " +
                     ned.error().to_string() +
                     (cnoc.ok() ? "; CNOC: empty" : "; CNOC: " +
                                                        cnoc.error().to_string()));
  }
  record_archive(trace, std::move(ned_status));
  record_archive(trace, std::move(cnoc_status));
  catalog.name = cluster_name + "_catalog";
  if (trace) trace->catalog_build_ms += fabric_.metrics().total_elapsed_ms - before;
  return catalog;
}

Expected<votable::Table> Portal::attach_cutout_refs(votable::Table catalog,
                                                    const std::string& cluster_name,
                                                    PortalTrace* trace) {
  const ClusterEntry* cluster = find_cluster(cluster_name);
  if (!cluster) return Error(ErrorCode::kNotFound, "unknown cluster " + cluster_name);
  const auto ra_col = catalog.column_index("ra");
  const auto dec_col = catalog.column_index("dec");
  if (!ra_col || !dec_col) {
    return Error(ErrorCode::kInvalidArgument, "catalog lacks ra/dec");
  }

  obs::Span stage = obs::start_span(config_.tracer, "portal.cutout_refs", "portal");
  const double before = fabric_.metrics().total_elapsed_ms;
  const auto cutout_snap = stats_snapshot(client_, federation_.cutout_sia);
  std::size_t queries = 0;
  std::size_t refs_attached = 0;
  catalog.add_column({"cutout_url", votable::DataType::kString, "", "meta.ref.url",
                      "galaxy cutout access reference"});

  // Matches one batch of records against catalog rows by position: for each
  // row, the nearest record strictly inside the 2 arcsec tolerance wins
  // (first record on exact ties, like the original linear scan). An index
  // over record centers makes this O((m + n) log m) instead of O(n·m).
  const auto match_records =
      [&](const std::vector<services::SiaRecord>& records,
          const std::vector<std::size_t>& row_ids) {
        std::vector<sky::Equatorial> centers;
        centers.reserve(records.size());
        for (const auto& r : records) centers.push_back(r.center);
        const sky::SpatialIndex record_index(std::move(centers), 720);
        constexpr double kTolDeg = 2.0 / 3600.0;  // 2 arcsec match tolerance
        for (const std::size_t i : row_ids) {
          const auto ra = catalog.row(i)[*ra_col].as_number();
          const auto dec = catalog.row(i)[*dec_col].as_number();
          if (!ra || !dec) continue;
          const sky::Equatorial pos{*ra, *dec};
          const services::SiaRecord* best = nullptr;
          double best_sep = kTolDeg;
          for (const std::size_t id : record_index.query_cone(pos, kTolDeg)) {
            const double sep = sky::angular_separation_deg(records[id].center, pos);
            if (sep < best_sep) {
              best_sep = sep;
              best = &records[id];
            }
          }
          if (best) {
            catalog.set_cell(i, "cutout_url",
                             votable::Value::of_string(best->access_url));
            ++refs_attached;
          }
        }
      };

  if (config_.cutout_query == CutoutQueryMode::kWideCone) {
    // The batched mode the paper wanted: one wide cone returns every
    // member's cutout reference; match records to rows by position.
    auto records = services::sia_query(client_, federation_.cutout_sia,
                                       cluster->position,
                                       cluster->search_radius_deg * 2.0);
    if (!records.ok()) {
      ArchiveStatus status =
          archive_status("MAST cutout", federation_.cutout_sia, cutout_snap);
      status.skipped_reason = records.error().to_string();
      record_archive(trace, std::move(status));
      if (trace) trace->cutout_query_ms += fabric_.metrics().total_elapsed_ms - before;
      return records.error();
    }
    ++queries;
    std::vector<std::size_t> all_rows(catalog.num_rows());
    for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
    match_records(records.value(), all_rows);
  } else if (config_.cutout_query == CutoutQueryMode::kCoalesced) {
    // Spatial-patch batching: rows bucketed on a fixed angular grid; one
    // SIA range query per occupied patch covers every member, so the
    // round-trip count follows the sky area, not the galaxy count, while
    // each response stays patch-sized. A failed patch query loses only
    // that patch's cutout references.
    const double patch = std::max(config_.cutout_patch_deg, 1e-6);
    // Each patch keeps (row index, position): positions are captured once
    // at bucketing time, so no later step re-dereferences as_number() on a
    // row it has not itself checked.
    struct Member {
      std::size_t row;
      sky::Equatorial pos;
    };
    std::map<std::pair<long, long>, std::vector<Member>> patches;
    for (std::size_t i = 0; i < catalog.num_rows(); ++i) {
      const auto ra = catalog.row(i)[*ra_col].as_number();
      const auto dec = catalog.row(i)[*dec_col].as_number();
      if (!ra || !dec) continue;
      patches[{static_cast<long>(std::floor(*ra / patch)),
               static_cast<long>(std::floor(*dec / patch))}]
          .push_back(Member{i, {*ra, *dec}});
    }
    for (const auto& [cell, members] : patches) {
      // Patch center = member centroid; the query radius covers the
      // farthest member plus a cutout-size margin.
      double sum_ra = 0.0, sum_dec = 0.0;
      for (const Member& m : members) {
        sum_ra += m.pos.ra_deg;
        sum_dec += m.pos.dec_deg;
      }
      const sky::Equatorial center{sum_ra / members.size(),
                                   sum_dec / members.size()};
      double max_sep = 0.0;
      for (const Member& m : members) {
        max_sep = std::max(max_sep, sky::angular_separation_deg(center, m.pos));
      }
      auto records = services::sia_query(client_, federation_.cutout_sia, center,
                                         2.0 * max_sep + config_.cutout_size_deg);
      ++queries;
      if (!records.ok() || records->empty()) continue;
      std::vector<std::size_t> row_ids;
      row_ids.reserve(members.size());
      for (const Member& m : members) row_ids.push_back(m.row);
      match_records(records.value(), row_ids);
    }
  } else {
    // The paper's actual behaviour: "an image query ... for each galaxy
    // must be done separately" — the application's bottleneck. A failed
    // query loses that one galaxy's cutout reference, not the stage.
    for (std::size_t i = 0; i < catalog.num_rows(); ++i) {
      const auto ra = catalog.row(i)[*ra_col].as_number();
      const auto dec = catalog.row(i)[*dec_col].as_number();
      if (!ra || !dec) continue;
      auto records = services::sia_query(client_, federation_.cutout_sia,
                                         {*ra, *dec}, config_.cutout_size_deg);
      ++queries;
      if (!records.ok() || records->empty()) continue;
      // The cone may contain close neighbors too; take the record nearest
      // the requested position, not merely the first.
      const sky::Equatorial want{*ra, *dec};
      const services::SiaRecord* best = &records->front();
      double best_sep = sky::angular_separation_deg(best->center, want);
      for (const auto& r : records.value()) {
        const double sep = sky::angular_separation_deg(r.center, want);
        if (sep < best_sep) {
          best_sep = sep;
          best = &r;
        }
      }
      catalog.set_cell(i, "cutout_url",
                       votable::Value::of_string(best->access_url));
      ++refs_attached;
    }
  }
  {
    ArchiveStatus status =
        archive_status("MAST cutout", federation_.cutout_sia, cutout_snap);
    status.rows = refs_attached;
    if (refs_attached == 0 && catalog.num_rows() > 0) {
      status.skipped_reason = "no cutout reference resolved";
    }
    record_archive(trace, std::move(status));
  }
  stage.count("queries", static_cast<double>(queries));
  stage.count("refs", static_cast<double>(refs_attached));
  if (trace) {
    trace->cutout_query_ms += fabric_.metrics().total_elapsed_ms - before;
    trace->cutout_queries += queries;
  }
  return catalog;
}

Portal::AnalysisOutcome Portal::run_analysis(const std::string& cluster_name) {
  AnalysisOutcome outcome;
  PortalTrace& trace = outcome.trace;
  obs::Span root = obs::start_span(config_.tracer, "portal.run_analysis", "portal");
  root.note("cluster", cluster_name);
  const auto fail = [&](Error error) {
    root.note("error", error.to_string());
    outcome.status = std::move(error);
    return std::move(outcome);
  };

  auto images = find_large_scale_images(cluster_name, &trace);
  if (!images.ok()) return fail(images.error());
  outcome.images = std::move(images.value());

  auto catalog = build_galaxy_catalog(cluster_name, &trace);
  if (!catalog.ok()) return fail(catalog.error());

  auto with_refs = attach_cutout_refs(std::move(catalog.value()), cluster_name, &trace);
  if (!with_refs.ok()) return fail(with_refs.error());
  trace.galaxies = with_refs->num_rows();

  // Drop rows with no cutout reference (nothing to compute on). The column
  // is checked, not assumed: a degraded cutout stage surfaces as a status,
  // never as an unchecked dereference.
  const auto url_col = with_refs->column_index("cutout_url");
  if (!url_col) {
    return fail(Error(ErrorCode::kInternal,
                      "cutout stage produced no cutout_url column"));
  }
  votable::Table compute_input =
      votable::select(with_refs.value(), [&](const votable::Row& row) {
        const auto url = row[*url_col].as_string();
        return url && !url->empty();
      });
  if (compute_input.num_rows() == 0) {
    return fail(Error(ErrorCode::kInvalidArgument,
                      "no galaxy in " + cluster_name + " has a cutout reference"));
  }

  // Submit to the compute service and poll asynchronously ("the portal
  // polls the returned URL until it finds a job completed status message").
  obs::Span compute_span = obs::start_span(config_.tracer, "portal.compute", "portal");
  const double before_compute = fabric_.metrics().total_elapsed_ms;
  auto status_url = compute_.gal_morph_compute(compute_input, cluster_name);
  if (!status_url.ok()) return fail(status_url.error());
  // The unique request id rides in the status URL ("...?id=req-N"); keep it
  // so the service trace can be found again after other requests interleave.
  if (const auto pos = status_url->find("id="); pos != std::string::npos) {
    trace.compute_request_id = status_url->substr(pos + 3);
  }
  std::string result_url;
  for (int i = 0; i < config_.poll_limit; ++i) {
    auto poll = compute_.poll(status_url.value());
    if (!poll.ok()) return fail(poll.error());
    ++trace.polls;
    if (poll->state == "completed") {
      result_url = poll->result_url;
      break;
    }
    if (poll->state == "failed") {
      return fail(Error(ErrorCode::kComputeFailed,
                        "compute service failed: " + join(poll->messages, "; ")));
    }
  }
  if (result_url.empty()) {
    return fail(Error(ErrorCode::kTimeout, "compute service never completed"));
  }
  auto morphology = compute_.fetch_result(result_url);
  if (!morphology.ok()) return fail(morphology.error());
  // Simulated compute latency: the service's own accounting (staging +
  // makespan) plus the polling round-trips recorded by the fabric.
  trace.compute_wait_ms += fabric_.metrics().total_elapsed_ms - before_compute;
  if (const ServiceTrace* st = compute_.trace(trace.compute_request_id)) {
    trace.compute_wait_ms += st->total_sim_seconds * 1000.0;
  }
  compute_span.count("polls", static_cast<double>(trace.polls));
  compute_span.count("galaxies", static_cast<double>(compute_input.num_rows()));
  compute_span.end();

  // Final merge: morphology columns joined back onto the full catalog.
  obs::Span merge_span = obs::start_span(config_.tracer, "portal.merge", "portal");
  const auto t0 = std::chrono::steady_clock::now();
  auto merged = votable::join(with_refs.value(), morphology.value(), "id", "id",
                              votable::JoinKind::kLeft);
  if (!merged.ok()) return fail(merged.error());
  trace.merge_ms = wall_ms_since(t0);

  const auto valid_col = merged->column_index("valid");
  for (std::size_t i = 0; i < merged->num_rows(); ++i) {
    if (valid_col) {
      const auto v = merged->row(i)[*valid_col].as_bool();
      if (v && *v) {
        ++trace.valid;
        continue;
      }
    }
    ++trace.invalid;
  }
  merge_span.end();
  outcome.catalog = std::move(merged.value());
  outcome.catalog.name = cluster_name + "_analysis";
  root.count("galaxies", static_cast<double>(trace.galaxies));
  root.count("valid", static_cast<double>(trace.valid));
  root.count("invalid", static_cast<double>(trace.invalid));
  return outcome;
}

}  // namespace nvo::portal
