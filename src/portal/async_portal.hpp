// The multi-tenant asynchronous portal front-end (paper §4.3.1 item 2, at
// production scale): many users submit overlapping derivation requests, get
// a unique id and a poll-able status back immediately, and the portal works
// through the backlog on the simulated fabric clock. The pieces:
//
//   * Intake + status: submit() answers at once — an id for admitted work,
//     an explicit shed with retry-after when the system is saturated. Every
//     request's status (queued/running/partial/done/failed/shed) is
//     poll-able via status(), and via a status URL on the fabric, exactly
//     like the compute service's own Fig. 6 protocol.
//   * Admission control + load shedding: bounded per-tenant and global
//     queues plus an optional byte budget (services::AdmissionController).
//     Overload produces fast explicit rejections and bounded queue memory,
//     never collapse.
//   * Fair scheduling: deficit round robin across tenants
//     (services::DeficitRoundRobin), charged in actual simulated
//     milliseconds, with per-tenant weights. One tenant's flood cannot
//     starve another's trickle.
//   * Cross-request virtual-data memoization: identical (cluster, params)
//     derivations coalesce while in flight (single-flight: followers park
//     until the leader resolves) and completed catalogs are memoized in a
//     byte-budgeted services::ReplicaCache over the RLS-backed compute
//     store, so duplicates re-fetch the materialized catalog instead of
//     re-deriving it. Degraded (partial/failed) outcomes are never
//     memoized — chaos stays with the tenant that hit it.
//
// Execution model: a discrete-event, stage-interleaved scheduler. step()
// runs ONE pipeline stage (images / catalog / cutouts / compute / merge) of
// one tenant's current request synchronously; interleaving across tenants
// happens at stage granularity. Each tenant runs its requests FIFO through
// its own portal::Portal (own resilient client, so breaker and quarantine
// state is tenant-scoped) against the shared compute service + RLS.
// Single-threaded by design — drive step()/drain() from one thread.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hpp"
#include "common/ids.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "portal/portal.hpp"
#include "services/admission.hpp"
#include "services/lifecycle.hpp"
#include "services/replica_cache.hpp"

namespace nvo::portal {

/// Lifecycle of one portal request. kExpired: the end-to-end deadline budget
/// ran out before the derivation finished (partial results, where built, are
/// surfaced). kCancelled: the client withdrew the request; queued work was
/// dropped cooperatively.
enum class RequestState {
  kQueued, kRunning, kPartial, kDone, kFailed, kShed, kExpired, kCancelled
};
const char* to_string(RequestState state);

struct AsyncPortalConfig {
  services::AdmissionConfig admission;
  services::DrrConfig drr;
  /// Memo store for completed catalog bytes (keyed by output LFN). Evicted
  /// entries silently fall back to a full derivation. Small budgets are a
  /// legitimate configuration — the eviction callback keeps accounting.
  services::ReplicaCacheConfig memo_cache{8ull << 20, 1};
  /// Admission byte estimate per request (queued-bytes budget accounting).
  std::size_t estimated_request_bytes = 96 * 1024;
  /// Shed, expired and cancelled requests stay poll-able (terminal state +
  /// retry-after), but only the most recent this-many such records are
  /// retained — under sustained overload the reject/abandon path must stay
  /// O(1) memory, so the oldest records age out of status() (kNotFound
  /// afterwards). All three terminal kinds share ONE bounded ring. 0 keeps
  /// every record.
  std::size_t shed_record_limit = 1024;
  /// Default end-to-end deadline budget (simulated ms from submit) applied
  /// when submit() passes none. <= 0 means unbounded. The budget rides the
  /// request through federation queries, staging fetches (clamping retry
  /// backoff), and workflow dispatch; when it runs out the request finishes
  /// kExpired with whatever partial results were built.
  double default_deadline_ms = 0.0;
  /// Floor on the simulated cost charged to a tenant per scheduling unit,
  /// so zero-fabric-cost units (local merges, scheduling decisions) still
  /// rotate the round robin.
  double min_stage_charge_ms = 1.0;
  /// Host serving this portal's status URLs on the fabric.
  std::string host = "portal.nvo.sim";
  /// Base configuration for every tenant's portal (retry/breaker/cutout
  /// mode/poll limit). The tracer inside is also used for request spans.
  PortalConfig portal;
};

/// Immediate answer to submit().
struct Submission {
  std::string id;             ///< empty only on invalid tenant/cluster
  bool admitted = false;
  std::string reason;         ///< shed/rejection reason ("" when admitted)
  double retry_after_ms = 0;  ///< explicit back-pressure on a shed
};

/// Poll-able snapshot of one request.
struct RequestStatus {
  std::string id;
  std::string tenant;
  std::string cluster;
  std::string params;
  RequestState state = RequestState::kQueued;
  std::string stage;          ///< current/last pipeline stage name
  double submit_ms = 0.0;     ///< simulated clock at submission
  double start_ms = 0.0;      ///< 0 until the request starts running
  double finish_ms = 0.0;     ///< 0 until terminal
  double retry_after_ms = 0.0;
  double deadline_ms = 0.0;   ///< absolute sim deadline; 0 when unbounded
  std::string error;
  bool memo_hit = false;      ///< served from the memoized catalog
  bool coalesced = false;     ///< waited on an identical in-flight derivation
  std::size_t galaxies = 0;
  std::size_t valid = 0;
  std::size_t invalid = 0;
  std::size_t archives_degraded = 0;

  bool terminal() const {
    return state == RequestState::kDone || state == RequestState::kPartial ||
           state == RequestState::kFailed || state == RequestState::kShed ||
           state == RequestState::kExpired || state == RequestState::kCancelled;
  }
  /// Submit-to-finish simulated latency; 0 until terminal.
  double latency_ms() const {
    return finish_ms > 0.0 ? finish_ms - submit_ms : 0.0;
  }
};

/// Per-tenant accounting.
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t done = 0;
  std::uint64_t partial = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  double busy_ms = 0.0;        ///< simulated service charged by the DRR
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;

  std::uint64_t completed() const { return done + partial; }
};

class AsyncPortal {
 public:
  /// The federation/compute back end is shared across tenants; the fabric's
  /// clock is the portal's clock. All references must outlive the portal.
  AsyncPortal(services::HttpFabric& fabric,
              const services::Federation& federation, MorphologyService& compute,
              AsyncPortalConfig config = {});

  /// Cluster catalog shared by every tenant's portal (call before tenants).
  void add_cluster(ClusterEntry entry);
  /// Registers a tenant with a DRR weight (must be unique; call before
  /// submitting for it).
  void add_tenant(const std::string& name, double weight = 1.0);

  /// Request intake. Answers immediately: an admitted request joins the
  /// tenant's FIFO queue; a shed one gets an explicit reason + retry-after
  /// (and remains poll-able in state kShed). `params` tags the derivation
  /// variant — the memoization key is (cluster, params). `deadline_ms` is
  /// the end-to-end budget in simulated ms from now (<= 0 falls back to
  /// AsyncPortalConfig::default_deadline_ms; both <= 0 means unbounded).
  Submission submit(const std::string& tenant, const std::string& cluster,
                    const std::string& params = "", double deadline_ms = 0.0);

  /// Cooperative cancellation of a non-terminal request. A queued request or
  /// parked follower terminalizes immediately (admission released, queued
  /// work dropped); a cancelled single-flight LEADER hands leadership to its
  /// longest-waiting follower, which re-runs the derivation while the rest
  /// stay parked behind it. A running request's token is flagged and every
  /// layer (federation fetches, staging, kernel tasks, DAG dispatch) unwinds
  /// at its next cooperative checkpoint — queued pool tasks drop via their
  /// cancel branch, in-flight stage-in counters return to zero, and nothing
  /// is memoized. Errors: kNotFound for unknown ids, kInvalidArgument when
  /// already terminal.
  Status cancel(const std::string& id, const std::string& reason = "client cancel");

  Expected<RequestStatus> status(const std::string& id) const;
  /// The fabric status URL for a request (served by this portal's host).
  std::string status_url(const std::string& id) const;
  /// Final catalog of a done/partial request, or the partial catalog an
  /// expired request had built when its budget ran out; nullptr otherwise.
  const votable::Table* result(const std::string& id) const;

  /// Runs one scheduling unit (start a request, or advance the running
  /// request of the DRR-chosen tenant by one stage). False when no tenant
  /// has runnable work.
  bool step();
  /// Steps until idle (or max_steps); returns steps taken.
  std::size_t drain(std::size_t max_steps = static_cast<std::size_t>(-1));
  bool idle() const;

  /// Global accounting.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t done = 0;
    std::uint64_t partial = 0;
    std::uint64_t failed = 0;
    std::uint64_t expired = 0;    ///< deadline budget ran out mid-derivation
    std::uint64_t cancelled = 0;  ///< withdrawn by the client
    /// Full derivations actually executed by the compute pipeline (compute
    /// stage ran without an RLS/journal result hit). The memoization claim
    /// is recomputes < admitted requests under duplicate load.
    std::uint64_t recomputes = 0;
    std::uint64_t compute_cache_hits = 0;  ///< RLS/journal hits at compute
    std::uint64_t memo_hits = 0;           ///< portal memo fast-path serves
    std::uint64_t coalesced = 0;           ///< followers parked on a leader
    std::uint64_t memo_evictions = 0;
    std::size_t queued = 0;   ///< admitted, waiting in tenant queues
    std::size_t running = 0;
    std::size_t waiting = 0;  ///< parked followers
  };
  Stats stats() const;
  services::AdmissionStats admission_stats() const { return admission_.stats(); }
  Expected<TenantStats> tenant_stats(const std::string& name) const;
  const services::ReplicaCache& memo_cache() const { return memo_cache_; }

  /// Registers per-tenant and global portal metrics plus request-latency
  /// histograms (global and per registered tenant) under "portal.async.*".
  /// Call after add_tenant; the portal must outlive the registry's use.
  void register_metrics(obs::MetricsRegistry& registry);

  double now_ms() const;

 private:
  enum class Stage {
    kStart, kImages, kCatalog, kCutouts, kCompute, kMerge, kMemoServe, kFinished
  };
  static const char* stage_name(Stage stage);

  struct Request {
    std::string id;
    std::string tenant;
    std::string cluster;
    std::string params;
    std::string memo_key;
    std::string out_name;
    std::string out_lfn;
    std::string result_url;
    RequestState state = RequestState::kQueued;
    Stage stage = Stage::kStart;
    /// Deadline budget + cancellation token, carried down through federation
    /// queries, staging fetches and workflow dispatch. Each request owns an
    /// independent token.
    services::RequestContext ctx;
    bool leader = false;
    bool coalesced = false;
    bool memo_hit = false;
    bool admission_held = false;  ///< release() still owed to the controller
    double submit_ms = 0.0;
    double start_ms = 0.0;
    double finish_ms = 0.0;
    double retry_after_ms = 0.0;
    std::string error;
    PortalTrace trace;
    Portal::ImageLinks images;
    votable::Table catalog;     ///< federation catalog with cutout refs
    votable::Table morphology;  ///< compute-service output
    votable::Table result;      ///< final deliverable
  };

  struct Tenant {
    std::string name;
    double weight = 1.0;
    std::unique_ptr<Portal> portal;
    std::deque<std::string> queue;  ///< admitted request ids, FIFO
    std::string running;            ///< "" when idle
    TenantStats stats;
  };

  void run_unit(Tenant& tenant);
  void start_request(Tenant& tenant, const std::string& id);
  void advance(Tenant& tenant, Request& req);
  void serve_from_memo(Tenant& tenant, Request& req);
  void finish(Tenant& tenant, Request& req, RequestState state);
  void fail_request(Tenant& tenant, Request& req, const std::string& error);
  /// Terminalizes an expired request: retry-after from the admission floors,
  /// partial results surfaced from whatever pipeline stage had completed.
  void expire_request(Tenant& tenant, Request& req, const std::string& why);
  /// Ages terminal reject/abandon records (shed, expired, cancelled) through
  /// the shared bounded ring.
  void retire_to_ring(const std::string& id);
  void release_admission(Request& req);
  void refresh_activation(Tenant& tenant);
  void memoize(const Request& req);
  bool memo_ready(const Request& req) const;
  void publish_status(const Request& req);
  void observe_latency(const Request& req);
  static std::size_t count_valid(const votable::Table& table, std::size_t* invalid);

  services::HttpFabric& fabric_;
  services::Federation federation_;
  MorphologyService& compute_;
  AsyncPortalConfig config_;
  services::AdmissionController admission_;
  services::DeficitRoundRobin drr_;
  services::ReplicaCache memo_cache_;
  IdGenerator ids_;
  std::vector<ClusterEntry> clusters_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::unordered_map<std::string, Request> requests_;
  /// Single-flight registry: memo key -> leader request id.
  std::unordered_map<std::string, std::string> inflight_;
  /// Leader id -> parked follower ids (promoted when the leader resolves).
  std::unordered_map<std::string, std::vector<std::string>> followers_;
  /// Retained shed/expired/cancelled record ids, oldest first (bounded by
  /// shed_record_limit; one ring for all three terminal kinds, so none of
  /// them can grow the status map without bound).
  std::deque<std::string> terminal_ring_;
  std::size_t waiting_ = 0;  ///< parked follower count
  Stats stats_;
  /// Fabric status board: id -> status line (shared with the /status route
  /// so the handler outlives the portal safely).
  std::shared_ptr<std::map<std::string, std::string>> status_board_;
  obs::Histogram* latency_hist_ = nullptr;
  std::map<std::string, obs::Histogram*> tenant_hists_;
  obs::MetricsRegistry* registry_ = nullptr;
};

}  // namespace nvo::portal
