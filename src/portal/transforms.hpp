// The document transforms of §4.3: "we used two stylesheets to process the
// input VOTable: the first simply created a URL list for loading the images
// into the RLS, and a second stylesheet converted the catalog directly into
// a derivation file containing the Virtual Data Language markup". XSLT is
// replaced by typed transforms over the parsed table; the outputs (URL list,
// VDL text) are identical in role.
#pragma once

#include <string>
#include <vector>

#include "common/expected.hpp"
#include "core/galmorph.hpp"
#include "vds/vdl_parser.hpp"
#include "votable/table.hpp"

namespace nvo::portal {

/// Stylesheet 1: the image URL list. Reads the `cutout_url` column (the
/// acref merged in by the portal's SIA step).
Expected<std::vector<std::string>> extract_url_list(const votable::Table& catalog);

/// Logical file names used by the galMorph workflow for one galaxy.
std::string image_lfn(const std::string& galaxy_id);
std::string result_lfn(const std::string& galaxy_id);
/// The cluster's output VOTable logical name ("the computed VOTable is
/// logically named after the galaxy cluster", §4.3).
std::string output_votable_lfn(const std::string& cluster_name);

/// Stylesheet 2: catalog -> VDL derivation file. Emits
///   * TR galMorph(...) — once,
///   * TR concatMorph_<cluster>(...) — generated with one `in` formal per
///     galaxy result plus the `out` VOTable (VDL has no varargs),
///   * DV m_<id>->galMorph(...) per galaxy, with per-galaxy redshift taken
///     from the catalog's `redshift` column (fallback: args.redshift),
///   * DV concat_<cluster>->concatMorph_<cluster>(...).
/// The request that materializes the whole analysis is then simply the
/// output VOTable lfn.
Expected<std::string> catalog_to_vdl(const votable::Table& catalog,
                                     const std::string& cluster_name,
                                     const core::GalMorphArgs& defaults);

/// Convenience: parse + semantic check of generated VDL in one call.
Expected<vds::VdlDocument> catalog_to_vdl_document(const votable::Table& catalog,
                                                   const std::string& cluster_name,
                                                   const core::GalMorphArgs& defaults);

}  // namespace nvo::portal
