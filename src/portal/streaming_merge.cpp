#include "portal/streaming_merge.hpp"

namespace nvo::portal {

StreamingCatalogWriter::StreamingCatalogWriter(
    const std::string& table_name, std::vector<core::GalMorphResult>& results)
    : schema_(core::morphology_schema(table_name)),
      results_(&results),
      kernel_done_(results.size(), 0),
      node_final_(results.size(), 0),
      grid_failed_(results.size(), 0) {
  stream_.begin(schema_, xml_);
}

void StreamingCatalogWriter::mark_kernel_done(std::size_t index) {
  std::lock_guard lock(mu_);
  kernel_done_[index] = 1;
  flush_ready_locked();
}

void StreamingCatalogWriter::mark_node_final(std::size_t index, bool grid_failed) {
  std::lock_guard lock(mu_);
  if (node_final_[index]) return;
  node_final_[index] = 1;
  grid_failed_[index] = grid_failed ? 1 : 0;
  flush_ready_locked();
}

bool StreamingCatalogWriter::node_finalized(std::size_t index) const {
  std::lock_guard lock(mu_);
  return node_final_[index] != 0;
}

std::size_t StreamingCatalogWriter::rows_emitted() const {
  std::lock_guard lock(mu_);
  return next_;
}

std::string StreamingCatalogWriter::finish() {
  std::lock_guard lock(mu_);
  flush_ready_locked();
  stream_.end(xml_);
  return std::move(xml_);
}

void StreamingCatalogWriter::flush_ready_locked() {
  while (next_ < kernel_done_.size() && kernel_done_[next_] &&
         node_final_[next_]) {
    core::GalMorphResult& r = (*results_)[next_];
    if (grid_failed_[next_]) {
      // Same override the barriered path applies after its barrier: a
      // grid-level failure voids the product even if the kernel ran.
      r.params.valid = false;
      r.params.failure_reason = "grid job failed";
    }
    stream_.row(core::morphology_row(r, schema_.num_columns()), xml_);
    ++next_;
  }
}

}  // namespace nvo::portal
