// Incremental catalog merge for the pipelined dataflow executor: finished
// galaxies are absorbed into the output VOTable while others are still
// staging or computing, instead of one batch concat after a full barrier.
//
// A catalog row is emittable only when BOTH halves of its story are final:
// the real kernel result exists (the morphology numbers), and the simulated
// grid node reached a final outcome (a failed node overrides the row to
// invalid — a job that never ran produces no product, however well the
// kernel did). Kernel completions arrive from pool threads in whatever
// order the pool finishes them; node outcomes arrive from the DAGMan event
// loop on the caller thread. The writer holds a reorder buffer and emits
// rows strictly in input (galaxy) order through votable::VotableXmlStream,
// which is a byte-identical decomposition of to_votable_xml — so the
// streamed catalog equals the phase-barriered concat_results path
// bit-for-bit, for every completion order.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "core/galmorph.hpp"
#include "votable/table.hpp"
#include "votable/votable_io.hpp"

namespace nvo::portal {

class StreamingCatalogWriter {
 public:
  /// `results` is the per-galaxy slot array the kernels fill; it must
  /// outlive the writer. Slot i may only be read after mark_kernel_done(i).
  StreamingCatalogWriter(const std::string& table_name,
                         std::vector<core::GalMorphResult>& results);

  /// Pool-thread side: results[index] is fully written and will not change.
  /// Thread-safe against concurrent marks on other indices and against
  /// mark_node_final on any index.
  void mark_kernel_done(std::size_t index);

  /// Caller-thread side: the simulated node outcome for this galaxy is
  /// final. `grid_failed` overrides the row to invalid ("grid job failed")
  /// at emission time. Idempotent: later marks for an already-final index
  /// are ignored, so a blanket end-of-run sweep is safe.
  void mark_node_final(std::size_t index, bool grid_failed);

  /// True once mark_node_final(index, ...) has been recorded.
  bool node_finalized(std::size_t index) const;

  /// Rows serialized into the document so far (emitted in input order).
  std::size_t rows_emitted() const;

  /// Closes the document and returns the full VOTable bytes. Every row must
  /// have been finalized (kernel + node) first.
  std::string finish();

 private:
  /// Emits every row whose turn has come and whose halves are both final.
  /// Caller holds mu_.
  void flush_ready_locked();

  mutable std::mutex mu_;
  votable::Table schema_;
  votable::VotableXmlStream stream_;
  std::string xml_;
  std::vector<core::GalMorphResult>* results_;
  std::vector<unsigned char> kernel_done_;
  std::vector<unsigned char> node_final_;
  std::vector<unsigned char> grid_failed_;
  std::size_t next_ = 0;  ///< first row not yet emitted
};

}  // namespace nvo::portal
