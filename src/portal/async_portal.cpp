#include "portal/async_portal.hpp"

#include <algorithm>
#include <utility>

#include "common/strings.hpp"
#include "portal/transforms.hpp"
#include "votable/table_ops.hpp"
#include "votable/votable_io.hpp"

namespace nvo::portal {

const char* to_string(RequestState state) {
  switch (state) {
    case RequestState::kQueued: return "queued";
    case RequestState::kRunning: return "running";
    case RequestState::kPartial: return "partial";
    case RequestState::kDone: return "done";
    case RequestState::kFailed: return "failed";
    case RequestState::kShed: return "shed";
    case RequestState::kExpired: return "expired";
    case RequestState::kCancelled: return "cancelled";
  }
  return "?";
}

const char* AsyncPortal::stage_name(Stage stage) {
  switch (stage) {
    case Stage::kStart: return "start";
    case Stage::kImages: return "images";
    case Stage::kCatalog: return "catalog";
    case Stage::kCutouts: return "cutouts";
    case Stage::kCompute: return "compute";
    case Stage::kMerge: return "merge";
    case Stage::kMemoServe: return "memo_serve";
    case Stage::kFinished: return "finished";
  }
  return "?";
}

AsyncPortal::AsyncPortal(services::HttpFabric& fabric,
                         const services::Federation& federation,
                         MorphologyService& compute, AsyncPortalConfig config)
    : fabric_(fabric),
      federation_(federation),
      compute_(compute),
      config_(std::move(config)),
      admission_(config_.admission),
      drr_(config_.drr),
      memo_cache_(config_.memo_cache),
      ids_("preq-"),
      status_board_(std::make_shared<std::map<std::string, std::string>>()) {
  // Evicted memo entries silently demote future duplicates to full runs;
  // the hook only keeps accounting honest. Runs outside every cache lock
  // (see the EvictionCallback lock-discipline contract), so it could even
  // re-enter the cache.
  stats_ = Stats{};
  auto* evictions = &stats_.memo_evictions;
  memo_cache_.set_eviction_callback(
      [evictions](const std::string&) { ++*evictions; });

  // The portal's own Fig. 6-style status endpoint: poll-able over the
  // fabric, one id per request. The board is shared so the handler stays
  // valid independent of the portal's lifetime.
  auto board = status_board_;
  fabric_.route(
      config_.host, "/status",
      [board](const services::Url& url) -> Expected<services::HttpResponse> {
        const auto it = url.query.find("id");
        if (it == url.query.end()) {
          return Error(ErrorCode::kInvalidArgument, "missing id parameter");
        }
        const auto found = board->find(it->second);
        if (found == board->end()) {
          return Error(ErrorCode::kNotFound, "no request " + it->second);
        }
        return services::HttpResponse::text(found->second, "text/plain");
      },
      services::EndpointModel{2.0, 100.0, 0.0, true});
}

void AsyncPortal::add_cluster(ClusterEntry entry) {
  clusters_.push_back(entry);
  for (auto& [name, tenant] : tenants_) tenant->portal->add_cluster(entry);
}

void AsyncPortal::add_tenant(const std::string& name, double weight) {
  if (tenants_.count(name)) return;
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->weight = weight;
  // Per-tenant portal over the shared compute service: breaker, retry and
  // quarantine state are scoped to the tenant (label separates the jitter
  // streams too, keeping multi-tenant runs deterministic).
  PortalConfig pcfg = config_.portal;
  tenant->portal = std::make_unique<Portal>(fabric_, federation_, compute_, pcfg);
  for (const ClusterEntry& c : clusters_) tenant->portal->add_cluster(c);
  drr_.set_weight(name, weight);
  if (registry_ && !tenant_hists_.count(name)) {
    tenant_hists_[name] = registry_->histogram(
        "portal.async.latency_ms." + name,
        {50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000,
         200000, 500000});
  }
  tenants_.emplace(name, std::move(tenant));
}

double AsyncPortal::now_ms() const { return fabric_.now_ms(); }

std::string AsyncPortal::status_url(const std::string& id) const {
  return "http://" + config_.host + "/status?id=" + id;
}

Submission AsyncPortal::submit(const std::string& tenant_name,
                               const std::string& cluster,
                               const std::string& params, double deadline_ms) {
  Submission out;
  const auto tit = tenants_.find(tenant_name);
  if (tit == tenants_.end()) {
    out.reason = "unknown tenant " + tenant_name;
    return out;
  }
  Tenant& tenant = *tit->second;
  const bool known_cluster =
      std::any_of(clusters_.begin(), clusters_.end(),
                  [&](const ClusterEntry& c) { return c.name == cluster; });
  if (!known_cluster) {
    out.reason = "unknown cluster " + cluster;
    return out;
  }

  ++stats_.submitted;
  ++tenant.stats.submitted;

  Request req;
  req.id = ids_.next();
  req.tenant = tenant_name;
  req.cluster = cluster;
  req.params = params;
  req.memo_key = cluster + "\x1f" + params;
  req.out_name = params.empty() ? cluster : cluster + "_" + params;
  req.out_lfn = output_votable_lfn(req.out_name);
  req.result_url =
      "http://" + compute_.config().host + "/results?name=" + req.out_lfn;
  req.submit_ms = now_ms();
  // The absolute deadline is fixed HERE, at submission — every layer below
  // computes its remaining budget against this instant, so queue time counts
  // against the SLO just like service time does.
  const double budget =
      deadline_ms > 0.0 ? deadline_ms : config_.default_deadline_ms;
  req.ctx.budget = services::DeadlineBudget::after(req.submit_ms, budget);
  out.id = req.id;

  const auto decision =
      admission_.offer(tenant_name, config_.estimated_request_bytes);
  if (!decision.admitted) {
    // Explicit shed: instantaneous, with a congestion-scaled retry-after.
    // The record stays poll-able so the client sees WHY it was turned away.
    req.state = RequestState::kShed;
    req.retry_after_ms = decision.retry_after_ms;
    req.error = services::to_string(decision.reason);
    req.finish_ms = req.submit_ms;
    ++stats_.shed;
    ++tenant.stats.shed;
    out.admitted = false;
    out.reason = req.error;
    out.retry_after_ms = decision.retry_after_ms;
    publish_status(req);
    const std::string shed_id = req.id;
    requests_.emplace(shed_id, std::move(req));
    retire_to_ring(shed_id);
    return out;
  }

  req.admission_held = true;
  ++stats_.admitted;
  ++stats_.queued;
  out.admitted = true;
  publish_status(req);
  tenant.queue.push_back(req.id);
  requests_.emplace(req.id, std::move(req));
  drr_.activate(tenant_name);
  return out;
}

bool AsyncPortal::step() {
  const std::string who = drr_.pick();
  if (who.empty()) return false;
  Tenant& tenant = *tenants_.at(who);
  const double t0 = now_ms();
  run_unit(tenant);
  // Charge the ACTUAL simulated cost of the unit (every fabric round-trip
  // and the compute makespan advance the clock), floored so local-only
  // units still rotate the ring.
  const double cost = std::max(now_ms() - t0, config_.min_stage_charge_ms);
  drr_.charge(who, cost);
  tenant.stats.busy_ms += cost;
  refresh_activation(tenant);
  return true;
}

std::size_t AsyncPortal::drain(std::size_t max_steps) {
  std::size_t steps = 0;
  while (steps < max_steps && step()) ++steps;
  return steps;
}

bool AsyncPortal::idle() const { return drr_.active_count() == 0; }

void AsyncPortal::run_unit(Tenant& tenant) {
  if (!tenant.running.empty()) {
    advance(tenant, requests_.at(tenant.running));
    return;
  }
  if (tenant.queue.empty()) return;
  const std::string id = tenant.queue.front();
  tenant.queue.pop_front();
  start_request(tenant, id);
}

void AsyncPortal::retire_to_ring(const std::string& id) {
  // Bounded-memory terminal records: under sustained overload (or a cancel
  // storm) the reject/abandon path must not accumulate state, so shed,
  // expired and cancelled records share one ring and only the freshest stay
  // poll-able. The id just pushed is the ring's newest entry, so the trim
  // below can never erase the record mid-use.
  terminal_ring_.push_back(id);
  while (config_.shed_record_limit > 0 &&
         terminal_ring_.size() > config_.shed_record_limit) {
    requests_.erase(terminal_ring_.front());
    status_board_->erase(terminal_ring_.front());
    terminal_ring_.pop_front();
  }
}

Status AsyncPortal::cancel(const std::string& id, const std::string& reason) {
  const auto it = requests_.find(id);
  if (it == requests_.end()) {
    return Error(ErrorCode::kNotFound, "no request " + id);
  }
  Request& req = it->second;
  if (req.state != RequestState::kQueued && req.state != RequestState::kRunning) {
    return Error(ErrorCode::kInvalidArgument,
                 "request " + id + " already terminal (" +
                     to_string(req.state) + ")");
  }
  req.ctx.cancel.cancel(reason);
  Tenant& tenant = *tenants_.at(req.tenant);

  // Queued in the tenant FIFO: drop it there and terminalize immediately.
  auto& q = tenant.queue;
  if (const auto qit = std::find(q.begin(), q.end(), id); qit != q.end()) {
    q.erase(qit);
    release_admission(req);
    req.error = "cancelled: " + reason;
    req.retry_after_ms = admission_.retry_after_hint();
    finish(tenant, req, RequestState::kCancelled);
    refresh_activation(tenant);
    return Status::Ok();
  }

  // Parked follower: unpark from its leader's list and terminalize. The
  // leader (someone else's identical derivation) keeps running.
  if (req.coalesced && tenant.running != id) {
    for (auto& [leader_id, parked] : followers_) {
      const auto fit = std::find(parked.begin(), parked.end(), id);
      if (fit == parked.end()) continue;
      parked.erase(fit);
      --stats_.waiting;
      ++stats_.queued;  // rejoin queued accounting so release balances it
      --waiting_;
      release_admission(req);
      req.error = "cancelled: " + reason;
      req.retry_after_ms = admission_.retry_after_hint();
      finish(tenant, req, RequestState::kCancelled);
      return Status::Ok();
    }
  }

  // Running: the token is flagged; every layer below unwinds at its next
  // cooperative checkpoint (staging fetch boundary, kernel dequeue, DAG
  // event), and the request terminalizes at its next scheduling unit. No
  // immediate finish here — a cancel arriving from inside a fabric handler
  // mid-stage must not re-enter the scheduler under the running stage.
  return Status::Ok();
}

void AsyncPortal::start_request(Tenant& tenant, const std::string& id) {
  Request& req = requests_.at(id);
  if (req.ctx.cancel.cancelled()) {
    release_admission(req);
    req.error = "cancelled: " + req.ctx.cancel.reason();
    req.retry_after_ms = admission_.retry_after_hint();
    finish(tenant, req, RequestState::kCancelled);
    return;
  }
  if (req.ctx.expired(now_ms())) {
    release_admission(req);
    expire_request(tenant, req, "deadline budget exhausted in queue");
    return;
  }
  if (memo_ready(req)) {
    // Completed-derivation memo hit: the request still runs (and pays for)
    // one catalog fetch through its own tenant's client, but skips the
    // whole derivation pipeline.
    release_admission(req);
    req.state = RequestState::kRunning;
    req.stage = Stage::kMemoServe;
    req.start_ms = now_ms();
    ++stats_.running;
    tenant.running = id;
    publish_status(req);
    return;
  }
  if (const auto leader = inflight_.find(req.memo_key);
      leader != inflight_.end() && leader->second != id) {
    // Single-flight: an identical derivation is in flight — park behind it
    // rather than racing it. Admission stays held (the request is still
    // occupying the system); the tenant's slot frees up for other work.
    // (A request finding ITSELF in the registry was re-elected leader after
    // the previous leader cancelled; it proceeds to run below.)
    req.coalesced = true;
    ++stats_.coalesced;
    ++stats_.waiting;
    --stats_.queued;
    ++waiting_;
    followers_[leader->second].push_back(id);
    publish_status(req);
    return;
  }
  release_admission(req);
  inflight_[req.memo_key] = id;
  req.leader = true;
  req.state = RequestState::kRunning;
  req.stage = Stage::kImages;
  req.start_ms = now_ms();
  ++stats_.running;
  tenant.running = id;
  publish_status(req);
}

void AsyncPortal::advance(Tenant& tenant, Request& req) {
  // Cooperative checkpoints at stage granularity: a token flagged while a
  // stage was in flight (or between scheduling units) terminalizes here,
  // before the next stage spends anything.
  if (req.ctx.cancel.cancelled()) {
    req.error = "cancelled: " + req.ctx.cancel.reason();
    req.retry_after_ms = admission_.retry_after_hint();
    return finish(tenant, req, RequestState::kCancelled);
  }
  if (req.ctx.expired(now_ms())) {
    return expire_request(
        tenant, req,
        format("deadline budget exhausted at stage %s", stage_name(req.stage)));
  }
  // Federation queries, cutout resolution and result fetches all go through
  // the tenant's own resilient client: scope the request's remaining budget
  // and token onto it for the duration of this stage, so per-call deadlines
  // clamp to what's left and backoff never sleeps past the SLO.
  services::ResilientClient::ScopedContext scoped(tenant.portal->client(),
                                                  req.ctx);
  switch (req.stage) {
    case Stage::kImages: {
      auto images = tenant.portal->find_large_scale_images(req.cluster, &req.trace);
      if (!images.ok()) return fail_request(tenant, req, images.error().to_string());
      req.images = std::move(images.value());
      req.stage = Stage::kCatalog;
      return;
    }
    case Stage::kCatalog: {
      auto catalog = tenant.portal->build_galaxy_catalog(req.cluster, &req.trace);
      if (!catalog.ok()) return fail_request(tenant, req, catalog.error().to_string());
      req.catalog = std::move(catalog.value());
      req.stage = Stage::kCutouts;
      return;
    }
    case Stage::kCutouts: {
      auto with_refs = tenant.portal->attach_cutout_refs(std::move(req.catalog),
                                                         req.cluster, &req.trace);
      if (!with_refs.ok()) {
        return fail_request(tenant, req, with_refs.error().to_string());
      }
      req.catalog = std::move(with_refs.value());
      req.trace.galaxies = req.catalog.num_rows();
      req.stage = Stage::kCompute;
      return;
    }
    case Stage::kCompute: {
      const auto url_col = req.catalog.column_index("cutout_url");
      if (!url_col) {
        return fail_request(tenant, req, "cutout stage produced no cutout_url column");
      }
      votable::Table input =
          votable::select(req.catalog, [&](const votable::Row& row) {
            const auto url = row[*url_col].as_string();
            return url && !url->empty();
          });
      if (input.num_rows() == 0) {
        return fail_request(tenant, req,
                            "no galaxy in " + req.cluster + " has a cutout reference");
      }
      const double before = now_ms();
      auto status_url = compute_.gal_morph_compute(input, req.out_name, req.ctx);
      if (!status_url.ok()) {
        return fail_request(tenant, req, status_url.error().to_string());
      }
      if (const auto pos = status_url->find("id="); pos != std::string::npos) {
        req.trace.compute_request_id = status_url->substr(pos + 3);
      }
      std::string result_url;
      for (int i = 0; i < config_.portal.poll_limit; ++i) {
        auto poll = compute_.poll(status_url.value());
        if (!poll.ok()) return fail_request(tenant, req, poll.error().to_string());
        ++req.trace.polls;
        if (poll->state == "completed") {
          result_url = poll->result_url;
          break;
        }
        if (poll->state == "cancelled") {
          req.error = "compute cancelled: " + join(poll->messages, "; ");
          req.retry_after_ms = admission_.retry_after_hint();
          return finish(tenant, req, RequestState::kCancelled);
        }
        if (poll->state == "expired") {
          return expire_request(tenant, req,
                                "compute deadline exceeded: " +
                                    join(poll->messages, "; "));
        }
        if (poll->state == "failed") {
          return fail_request(tenant, req, "compute service failed: " +
                                               join(poll->messages, "; "));
        }
      }
      if (result_url.empty()) {
        return fail_request(tenant, req, "compute service never completed");
      }
      auto fetched = tenant.portal->client().get(result_url);
      if (!fetched.ok()) return fail_request(tenant, req, fetched.error().to_string());
      auto morphology = votable::from_votable_xml(fetched->body_text());
      if (!morphology.ok()) {
        return fail_request(tenant, req, morphology.error().to_string());
      }
      req.morphology = std::move(morphology.value());
      req.trace.compute_wait_ms += now_ms() - before;
      if (const ServiceTrace* st = compute_.trace(req.trace.compute_request_id)) {
        // The service reports its staging + workflow makespan as a trace
        // quantity; surface it on the shared timeline so every tenant's
        // latency — and the DRR's cost accounting — sees the compute time.
        fabric_.advance_clock(st->total_sim_seconds * 1000.0);
        req.trace.compute_wait_ms += st->total_sim_seconds * 1000.0;
        if (st->cache_hit || st->journal_hit) {
          ++stats_.compute_cache_hits;
        } else {
          ++stats_.recomputes;
        }
      }
      req.result_url = result_url;
      req.stage = Stage::kMerge;
      return;
    }
    case Stage::kMerge: {
      auto merged = votable::join(req.catalog, req.morphology, "id", "id",
                                  votable::JoinKind::kLeft);
      if (!merged.ok()) return fail_request(tenant, req, merged.error().to_string());
      req.result = std::move(merged.value());
      req.result.name = req.cluster + "_analysis";
      req.trace.valid = count_valid(req.result, &req.trace.invalid);
      finish(tenant, req,
             req.trace.archives_degraded() > 0 ? RequestState::kPartial
                                               : RequestState::kDone);
      return;
    }
    case Stage::kMemoServe:
      return serve_from_memo(tenant, req);
    case Stage::kStart:
    case Stage::kFinished:
      return;
  }
}

void AsyncPortal::serve_from_memo(Tenant& tenant, Request& req) {
  const auto payload = memo_cache_.get(req.out_lfn);
  const std::string* xml = compute_.result_xml(req.out_lfn);
  if (!payload || !xml) {
    // Evicted (or the backing store lost it) between scheduling and serve:
    // demote to a full derivation, re-entering the single-flight protocol.
    if (const auto leader = inflight_.find(req.memo_key);
        leader != inflight_.end()) {
      req.coalesced = true;
      ++stats_.coalesced;
      ++stats_.waiting;
      --stats_.running;
      ++waiting_;
      followers_[leader->second].push_back(req.id);
      tenant.running.clear();
      req.state = RequestState::kQueued;
      publish_status(req);
      return;
    }
    inflight_[req.memo_key] = req.id;
    req.leader = true;
    req.stage = Stage::kImages;
    return;
  }
  // Serve the memoized catalog through the tenant's own client — a real
  // fabric fetch (latency, integrity verification, breaker accounting)
  // against the RLS-backed result store, not a zero-cost map lookup.
  auto fetched = tenant.portal->client().get(req.result_url);
  if (!fetched.ok()) return fail_request(tenant, req, fetched.error().to_string());
  auto table = votable::from_votable_xml(fetched->body_text());
  if (!table.ok()) return fail_request(tenant, req, table.error().to_string());
  req.result = std::move(table.value());
  req.trace.galaxies = req.result.num_rows();
  req.trace.valid = count_valid(req.result, &req.trace.invalid);
  req.memo_hit = true;
  ++stats_.memo_hits;
  finish(tenant, req, RequestState::kDone);
}

void AsyncPortal::fail_request(Tenant& tenant, Request& req,
                               const std::string& error) {
  req.error = error;
  finish(tenant, req, RequestState::kFailed);
}

void AsyncPortal::expire_request(Tenant& tenant, Request& req,
                                 const std::string& why) {
  req.error = why;
  // Consistent back-pressure: an expired client retries against the same
  // congestion floors a shed one does.
  req.retry_after_ms = admission_.retry_after_hint();
  // Partial results: whatever the pipeline had built when the budget ran out
  // (typically the federation catalog with cutout refs) stays retrievable —
  // the tenant paid for it.
  if (req.result.num_rows() == 0 && req.catalog.num_rows() > 0) {
    req.result = req.catalog;
    req.result.name = req.cluster + "_partial";
  }
  finish(tenant, req, RequestState::kExpired);
}

void AsyncPortal::finish(Tenant& tenant, Request& req, RequestState state) {
  req.state = state;
  req.stage = Stage::kFinished;
  req.finish_ms = now_ms();
  if (tenant.running == req.id) {
    tenant.running.clear();
    --stats_.running;
  }
  switch (state) {
    case RequestState::kDone: ++stats_.done; ++tenant.stats.done; break;
    case RequestState::kPartial: ++stats_.partial; ++tenant.stats.partial; break;
    case RequestState::kFailed: ++stats_.failed; ++tenant.stats.failed; break;
    case RequestState::kExpired: ++stats_.expired; ++tenant.stats.expired; break;
    case RequestState::kCancelled:
      ++stats_.cancelled;
      ++tenant.stats.cancelled;
      break;
    default: break;
  }
  observe_latency(req);
  publish_status(req);
  if (config_.portal.tracer) {
    config_.portal.tracer->record_span(
        0, "async.request", "portal", req.submit_ms, req.finish_ms - req.submit_ms,
        {{"galaxies", static_cast<double>(req.trace.galaxies)},
         {"valid", static_cast<double>(req.trace.valid)},
         {"archives_degraded",
          static_cast<double>(req.trace.archives_degraded())}},
        {{"tenant", req.tenant},
         {"request", req.id},
         {"cluster", req.cluster},
         {"state", to_string(state)},
         {"memo", req.memo_hit ? "hit" : (req.coalesced ? "coalesced" : "miss")}});
  }

  // Terminal reject/abandon records age out through the shared bounded ring
  // (the same O(1)-memory contract shedding has; the id just pushed is the
  // newest, so `req` stays valid through the bookkeeping below).
  if (state == RequestState::kExpired || state == RequestState::kCancelled) {
    retire_to_ring(req.id);
  }

  if (!req.leader) return;
  // Leader bookkeeping: resolve the single-flight entry and promote every
  // parked follower. A clean result is memoized and followers ride the memo
  // fast path (queue front — they have waited the longest); a degraded or
  // failed result is NOT memoized and followers re-run independently, so
  // one tenant's chaos never propagates a bad catalog to another tenant.
  inflight_.erase(req.memo_key);
  const auto fit = followers_.find(req.id);
  if (state == RequestState::kDone) memoize(req);
  if (fit == followers_.end()) return;
  std::vector<std::string> promoted = std::move(fit->second);
  followers_.erase(fit);
  if ((state == RequestState::kCancelled || state == RequestState::kExpired) &&
      !promoted.empty()) {
    // Leader re-election: the leader abandoned the derivation, but its
    // followers still want the result. The longest-waiting follower inherits
    // leadership — it takes the single-flight slot, re-runs the derivation
    // from the front of its tenant's queue, and the remaining followers stay
    // parked behind IT instead of fanning out into duplicate runs.
    const std::string new_leader_id = promoted.front();
    promoted.erase(promoted.begin());
    Request& new_leader = requests_.at(new_leader_id);
    new_leader.leader = true;
    inflight_[new_leader.memo_key] = new_leader_id;
    if (!promoted.empty()) {
      followers_[new_leader_id] = std::move(promoted);
    }
    new_leader.stage = Stage::kStart;
    new_leader.state = RequestState::kQueued;
    --stats_.waiting;
    ++stats_.queued;
    --waiting_;
    Tenant& nt = *tenants_.at(new_leader.tenant);
    nt.queue.push_front(new_leader_id);
    publish_status(new_leader);
    drr_.activate(new_leader.tenant);
    return;
  }
  for (const std::string& fid : promoted) {
    Request& follower = requests_.at(fid);
    follower.stage = Stage::kStart;
    follower.state = RequestState::kQueued;
    --stats_.waiting;
    ++stats_.queued;
    --waiting_;
    Tenant& ft = *tenants_.at(follower.tenant);
    if (state == RequestState::kDone) {
      ft.queue.push_front(fid);
    } else {
      ft.queue.push_back(fid);
    }
    publish_status(follower);
    drr_.activate(follower.tenant);
  }
}

void AsyncPortal::release_admission(Request& req) {
  if (!req.admission_held) return;
  req.admission_held = false;
  admission_.release(req.tenant, config_.estimated_request_bytes);
  if (stats_.queued > 0) --stats_.queued;
}

void AsyncPortal::refresh_activation(Tenant& tenant) {
  if (tenant.running.empty() && tenant.queue.empty()) {
    drr_.deactivate(tenant.name);
  } else {
    drr_.activate(tenant.name);
  }
}

void AsyncPortal::memoize(const Request& req) {
  const std::string* xml = compute_.result_xml(req.out_lfn);
  if (!xml) return;
  memo_cache_.put(req.out_lfn,
                  std::vector<std::uint8_t>(xml->begin(), xml->end()));
}

bool AsyncPortal::memo_ready(const Request& req) const {
  // Valid only while BOTH layers hold the catalog: the portal's memo cache
  // (byte-budgeted; evictions demote to recompute) and the compute
  // service's RLS-backed result store that /results serves from.
  return memo_cache_.contains(req.out_lfn) &&
         compute_.result_xml(req.out_lfn) != nullptr;
}

void AsyncPortal::publish_status(const Request& req) {
  std::string line = "id=" + req.id + " tenant=" + req.tenant +
                     " cluster=" + req.cluster + " state=" + to_string(req.state) +
                     " stage=" + stage_name(req.stage);
  if (req.state == RequestState::kShed || req.state == RequestState::kExpired ||
      req.state == RequestState::kCancelled) {
    line += format(" retry_after_ms=%.0f reason=%s", req.retry_after_ms,
                   req.error.c_str());
  }
  if (!req.error.empty() && req.state == RequestState::kFailed) {
    line += " error=" + req.error;
  }
  (*status_board_)[req.id] = std::move(line);
}

void AsyncPortal::observe_latency(const Request& req) {
  const double latency = req.finish_ms - req.submit_ms;
  Tenant& tenant = *tenants_.at(req.tenant);
  if (req.state == RequestState::kDone || req.state == RequestState::kPartial) {
    tenant.stats.total_latency_ms += latency;
    tenant.stats.max_latency_ms = std::max(tenant.stats.max_latency_ms, latency);
  }
  if (latency_hist_) latency_hist_->observe(latency);
  const auto hit = tenant_hists_.find(req.tenant);
  if (hit != tenant_hists_.end() && hit->second) hit->second->observe(latency);
}

std::size_t AsyncPortal::count_valid(const votable::Table& table,
                                     std::size_t* invalid) {
  std::size_t valid = 0;
  std::size_t bad = 0;
  const auto valid_col = table.column_index("valid");
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    if (valid_col) {
      const auto v = table.row(i)[*valid_col].as_bool();
      if (v && *v) {
        ++valid;
        continue;
      }
    }
    ++bad;
  }
  if (invalid) *invalid = bad;
  return valid;
}

Expected<RequestStatus> AsyncPortal::status(const std::string& id) const {
  const auto it = requests_.find(id);
  if (it == requests_.end()) {
    return Error(ErrorCode::kNotFound, "no request " + id);
  }
  const Request& req = it->second;
  RequestStatus out;
  out.id = req.id;
  out.tenant = req.tenant;
  out.cluster = req.cluster;
  out.params = req.params;
  out.state = req.state;
  out.stage = stage_name(req.stage);
  out.submit_ms = req.submit_ms;
  out.start_ms = req.start_ms;
  out.finish_ms = req.finish_ms;
  out.retry_after_ms = req.retry_after_ms;
  out.deadline_ms = req.ctx.budget.bounded() ? req.ctx.budget.deadline_ms : 0.0;
  out.error = req.error;
  out.memo_hit = req.memo_hit;
  out.coalesced = req.coalesced;
  out.galaxies = req.trace.galaxies;
  out.valid = req.trace.valid;
  out.invalid = req.trace.invalid;
  out.archives_degraded = req.trace.archives_degraded();
  return out;
}

const votable::Table* AsyncPortal::result(const std::string& id) const {
  const auto it = requests_.find(id);
  if (it == requests_.end()) return nullptr;
  const Request& req = it->second;
  // An expired request surfaces the partial catalog it had built when the
  // budget ran out (nullptr when it expired before producing anything).
  if (req.state == RequestState::kExpired) {
    return req.result.num_rows() > 0 ? &req.result : nullptr;
  }
  if (req.state != RequestState::kDone && req.state != RequestState::kPartial) {
    return nullptr;
  }
  return &req.result;
}

AsyncPortal::Stats AsyncPortal::stats() const { return stats_; }

Expected<TenantStats> AsyncPortal::tenant_stats(const std::string& name) const {
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Error(ErrorCode::kNotFound, "no tenant " + name);
  }
  return it->second->stats;
}

void AsyncPortal::register_metrics(obs::MetricsRegistry& registry) {
  registry_ = &registry;
  const std::vector<double> bounds = {50,    100,   200,   500,    1000,
                                      2000,  5000,  10000, 20000,  50000,
                                      100000, 200000, 500000};
  latency_hist_ = registry.histogram("portal.async.latency_ms", bounds);
  for (const auto& [name, tenant] : tenants_) {
    (void)tenant;
    if (!tenant_hists_.count(name)) {
      tenant_hists_[name] =
          registry.histogram("portal.async.latency_ms." + name, bounds);
    }
  }
  registry.register_collector(
      "portal.async", [this](std::map<std::string, double>& counters,
                             std::map<std::string, double>& gauges) {
        counters["portal.async.submitted"] = static_cast<double>(stats_.submitted);
        counters["portal.async.admitted"] = static_cast<double>(stats_.admitted);
        counters["portal.async.shed"] = static_cast<double>(stats_.shed);
        counters["portal.async.done"] = static_cast<double>(stats_.done);
        counters["portal.async.partial"] = static_cast<double>(stats_.partial);
        counters["portal.async.failed"] = static_cast<double>(stats_.failed);
        counters["portal.async.expired"] = static_cast<double>(stats_.expired);
        counters["portal.async.cancelled"] =
            static_cast<double>(stats_.cancelled);
        counters["portal.async.recomputes"] =
            static_cast<double>(stats_.recomputes);
        counters["portal.async.compute_cache_hits"] =
            static_cast<double>(stats_.compute_cache_hits);
        counters["portal.async.memo_hits"] = static_cast<double>(stats_.memo_hits);
        counters["portal.async.coalesced"] = static_cast<double>(stats_.coalesced);
        counters["portal.async.memo_evictions"] =
            static_cast<double>(stats_.memo_evictions);
        gauges["portal.async.queued"] = static_cast<double>(stats_.queued);
        gauges["portal.async.running"] = static_cast<double>(stats_.running);
        gauges["portal.async.waiting"] = static_cast<double>(stats_.waiting);
        const services::AdmissionStats a = admission_.stats();
        counters["portal.async.admission.shed_tenant_queue"] =
            static_cast<double>(a.shed_tenant_queue);
        counters["portal.async.admission.shed_global_queue"] =
            static_cast<double>(a.shed_global_queue);
        counters["portal.async.admission.shed_byte_budget"] =
            static_cast<double>(a.shed_byte_budget);
        gauges["portal.async.admission.queued_bytes"] =
            static_cast<double>(a.queued_bytes);
        gauges["portal.async.admission.max_queued"] =
            static_cast<double>(a.max_queued);
        for (const auto& [name, tenant] : tenants_) {
          const std::string prefix = "portal.async.tenant." + name + ".";
          counters[prefix + "submitted"] =
              static_cast<double>(tenant->stats.submitted);
          counters[prefix + "shed"] = static_cast<double>(tenant->stats.shed);
          counters[prefix + "done"] = static_cast<double>(tenant->stats.done);
          counters[prefix + "partial"] =
              static_cast<double>(tenant->stats.partial);
          counters[prefix + "failed"] = static_cast<double>(tenant->stats.failed);
          counters[prefix + "expired"] =
              static_cast<double>(tenant->stats.expired);
          counters[prefix + "cancelled"] =
              static_cast<double>(tenant->stats.cancelled);
          counters[prefix + "busy_ms"] = tenant->stats.busy_ms;
          gauges[prefix + "queued"] = static_cast<double>(tenant->queue.size());
        }
      });
}

}  // namespace nvo::portal
