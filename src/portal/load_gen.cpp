#include "portal/load_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace nvo::portal {
namespace {

struct Arrival {
  double at_ms = 0.0;
  std::size_t order = 0;  ///< stable tiebreak for simultaneous arrivals
  std::string tenant;
  std::string cluster;
  double deadline_ms = 0.0;  ///< tenant SLO carried by this request
};

LatencySummary summarize(std::vector<double> latencies) {
  LatencySummary out;
  out.count = latencies.size();
  if (latencies.empty()) return out;
  std::sort(latencies.begin(), latencies.end());
  const auto rank = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(latencies.size())));
    return latencies[std::min(latencies.size() - 1, idx == 0 ? 0 : idx - 1)];
  };
  out.p50_ms = rank(0.50);
  out.p99_ms = rank(0.99);
  out.max_ms = latencies.back();
  double sum = 0.0;
  for (double v : latencies) sum += v;
  out.mean_ms = sum / static_cast<double>(latencies.size());
  return out;
}

}  // namespace

LoadOutcome run_load(AsyncPortal& portal, services::HttpFabric& fabric,
                     const std::vector<LoadTenantSpec>& specs,
                     const LoadConfig& config) {
  LoadOutcome out;
  if (specs.empty() || config.mean_service_ms <= 0.0) return out;

  double scale_total = 0.0;
  for (const LoadTenantSpec& spec : specs) {
    scale_total += std::max(spec.rate_scale, 0.0);
  }
  if (scale_total <= 0.0) return out;
  // Offered rate in requests per simulated ms, split across tenants. At
  // overload = 1 the aggregate arrival rate matches one request per mean
  // service time — the knife's edge; > 1 guarantees a growing backlog that
  // only admission control keeps bounded.
  const double total_rate = config.overload / config.mean_service_ms;

  std::vector<Arrival> schedule;
  std::size_t order = 0;
  Rng root(config.seed);
  for (const LoadTenantSpec& spec : specs) {
    portal.add_tenant(spec.tenant, spec.weight);
    Rng rng = root.fork();
    const double share = std::max(spec.rate_scale, 0.0) / scale_total;
    const double rate = total_rate * share;
    if (rate <= 0.0 || spec.clusters.empty()) continue;
    double t = 0.0;
    std::size_t produced = 0;
    std::size_t cluster_cursor = 0;
    while (produced < config.requests_per_tenant) {
      t += rng.exponential(rate);
      std::size_t n = 1;
      if (config.burst_size > 1 && rng.uniform() < config.burst_fraction) {
        n = config.burst_size;
      }
      n = std::min(n, config.requests_per_tenant - produced);
      for (std::size_t i = 0; i < n; ++i) {
        schedule.push_back(Arrival{t, order++, spec.tenant,
                                   spec.clusters[cluster_cursor],
                                   spec.deadline_slo_ms});
        cluster_cursor = (cluster_cursor + 1) % spec.clusters.size();
      }
      produced += n;
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Arrival& a, const Arrival& b) {
              return a.at_ms != b.at_ms ? a.at_ms < b.at_ms
                                        : a.order < b.order;
            });

  // Drive loop: submissions fire exactly at their scheduled simulated time;
  // between arrivals the portal works the backlog. When the portal is idle
  // and work is still due later, jump the clock to the next arrival.
  const double start_ms = fabric.now_ms();
  std::size_t next = 0;
  std::size_t steps = 0;
  while (next < schedule.size() || !portal.idle()) {
    if (next < schedule.size() &&
        schedule[next].at_ms <= fabric.now_ms() - start_ms) {
      const Arrival& a = schedule[next++];
      const Submission sub =
          portal.submit(a.tenant, a.cluster, "", a.deadline_ms);
      if (!sub.id.empty()) out.request_ids.push_back(sub.id);
      continue;
    }
    if (portal.step()) {
      if (++steps >= config.max_steps) break;
      continue;
    }
    if (next >= schedule.size()) break;
    fabric.advance_clock(schedule[next].at_ms - (fabric.now_ms() - start_ms));
  }
  out.steps = steps;
  out.sim_elapsed_ms = fabric.now_ms() - start_ms;

  std::vector<double> all_latencies;
  std::map<std::string, std::vector<double>> tenant_latencies;
  std::size_t deadlines_met = 0;
  for (const std::string& id : out.request_ids) {
    const auto status = portal.status(id);
    if (!status.ok()) continue;
    ++out.submitted;
    TenantOutcome& t = out.tenants[status->tenant];
    ++t.submitted;
    switch (status->state) {
      case RequestState::kShed: ++out.shed; ++t.shed; break;
      case RequestState::kDone: ++out.done; ++t.done; break;
      case RequestState::kPartial: ++out.partial; ++t.partial; break;
      case RequestState::kFailed: ++out.failed; ++t.failed; break;
      case RequestState::kExpired: ++out.expired; ++t.expired; break;
      case RequestState::kCancelled: ++out.cancelled; ++t.cancelled; break;
      default: break;
    }
    const bool completed = status->state == RequestState::kDone ||
                           status->state == RequestState::kPartial;
    if (status->deadline_ms > 0.0) {
      ++out.deadlines_assigned;
      if (completed) ++deadlines_met;
    }
    if (completed) {
      all_latencies.push_back(status->latency_ms());
      tenant_latencies[status->tenant].push_back(status->latency_ms());
    }
  }
  if (out.deadlines_assigned > 0) {
    out.deadline_attainment = static_cast<double>(deadlines_met) /
                              static_cast<double>(out.deadlines_assigned);
  }
  out.latency = summarize(std::move(all_latencies));
  for (auto& [name, lats] : tenant_latencies) {
    out.tenants[name].latency = summarize(std::move(lats));
  }
  if (out.sim_elapsed_ms > 0.0) {
    out.goodput_per_s = static_cast<double>(out.done + out.partial) /
                        (out.sim_elapsed_ms / 1000.0);
  }
  if (out.submitted > 0) {
    out.shed_rate =
        static_cast<double>(out.shed) / static_cast<double>(out.submitted);
  }
  out.portal = portal.stats();
  return out;
}

double measure_mean_service_ms(Portal& portal,
                               const std::vector<std::string>& clusters) {
  if (clusters.empty()) return 0.0;
  double total = 0.0;
  std::size_t runs = 0;
  for (const std::string& cluster : clusters) {
    const auto outcome = portal.run_analysis(cluster);
    if (!outcome.ok()) continue;
    total += outcome.trace.total_ms();
    ++runs;
  }
  return runs == 0 ? 0.0 : total / static_cast<double>(runs);
}

}  // namespace nvo::portal
