// Open-loop load generation for the async portal: per-tenant Poisson
// arrival processes with occasional synchronized bursts, replayed on the
// simulated fabric clock. Open-loop means arrivals do NOT wait for
// completions — exactly the regime where admission control and load
// shedding earn their keep — so the offered rate is set by the overload
// factor, not by the portal's throughput.
//
// The generator is deterministic: one seed fixes the full arrival schedule
// (per-tenant forked streams), so a bench or test replays identically.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "portal/async_portal.hpp"

namespace nvo::portal {

/// One synthetic tenant: its DRR weight, the clusters it cycles through
/// (shared cluster lists across tenants are what exercise cross-request
/// memoization), and its share of the offered load.
struct LoadTenantSpec {
  std::string tenant;
  double weight = 1.0;
  std::vector<std::string> clusters;
  double rate_scale = 1.0;  ///< share of the total offered rate
  /// Per-tenant SLO: every request this tenant submits carries this
  /// end-to-end deadline budget (simulated ms; <= 0 = unbounded). Requests
  /// the portal cannot finish inside the budget terminalize as expired
  /// instead of occupying the system.
  double deadline_slo_ms = 0.0;
};

struct LoadConfig {
  /// Calibrated mean per-request service time (simulated ms); the offered
  /// rate is overload / mean_service_ms across all tenants. Must be > 0 —
  /// use measure_mean_service_ms() to calibrate.
  double mean_service_ms = 1000.0;
  /// Offered-load multiple of the portal's single-stream capacity: 1.0 is
  /// critically loaded, 5.0 is deep overload.
  double overload = 1.0;
  std::size_t requests_per_tenant = 20;
  /// Probability that an arrival is a synchronized burst instead of a
  /// single request (bursts stress the bounded queues).
  double burst_fraction = 0.25;
  std::size_t burst_size = 4;
  std::uint64_t seed = 42;
  /// Scheduler-step safety valve for the drive loop.
  std::size_t max_steps = 2'000'000;
};

/// Exact-order latency statistics (not histogram-estimated); completed
/// (done + partial) requests only.
struct LatencySummary {
  std::size_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

struct TenantOutcome {
  std::size_t submitted = 0;
  std::size_t shed = 0;
  std::size_t done = 0;
  std::size_t partial = 0;
  std::size_t failed = 0;
  std::size_t expired = 0;    ///< deadline budget ran out
  std::size_t cancelled = 0;
  LatencySummary latency;
};

struct LoadOutcome {
  std::size_t submitted = 0;
  std::size_t shed = 0;
  std::size_t done = 0;
  std::size_t partial = 0;
  std::size_t failed = 0;
  std::size_t expired = 0;    ///< deadline budget ran out
  std::size_t cancelled = 0;
  double sim_elapsed_ms = 0.0;  ///< fabric clock advance over the run
  std::size_t steps = 0;        ///< scheduler units executed
  double goodput_per_s = 0.0;   ///< (done + partial) per simulated second
  double shed_rate = 0.0;       ///< shed / submitted
  /// SLO attainment: of the requests submitted WITH a deadline, the fraction
  /// that completed (done or partial). Shed and expired both count against
  /// it — the client did not get a catalog inside the budget either way.
  /// 1.0 when no request carried a deadline.
  std::size_t deadlines_assigned = 0;
  double deadline_attainment = 1.0;
  LatencySummary latency;
  AsyncPortal::Stats portal;    ///< portal counters at end of run
  std::map<std::string, TenantOutcome> tenants;
  std::vector<std::string> request_ids;  ///< in submission order
};

/// Registers the spec'd tenants on the portal, generates the arrival
/// schedule, drives submissions and portal.step() interleaved on the fabric
/// clock until every arrival is terminal (or max_steps), and summarizes.
/// Clusters must already be added to the portal.
LoadOutcome run_load(AsyncPortal& portal, services::HttpFabric& fabric,
                     const std::vector<LoadTenantSpec>& specs,
                     const LoadConfig& config);

/// Calibrates LoadConfig::mean_service_ms: runs each cluster once through a
/// plain synchronous Portal and averages the traced per-request service
/// time. Run it against a scratch portal/compute pair — it warms caches.
double measure_mean_service_ms(Portal& portal,
                               const std::vector<std::string>& clusters);

}  // namespace nvo::portal
