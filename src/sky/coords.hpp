// Celestial coordinate math: equatorial positions, angular separations, cone
// membership (the geometric predicate behind the Cone Search protocol), and
// gnomonic tangent-plane projection (the geometry behind SIA cutouts and our
// WCS). Angles at the interface are in degrees, matching the Cone Search /
// SIA query conventions (RA, DEC, SR all in decimal degrees).
#pragma once

#include <string>

namespace nvo::sky {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kDegToRad = kPi / 180.0;
inline constexpr double kRadToDeg = 180.0 / kPi;
inline constexpr double kArcsecPerDeg = 3600.0;

/// An equatorial (ICRS-like) position in decimal degrees.
struct Equatorial {
  double ra_deg = 0.0;   ///< right ascension, [0, 360)
  double dec_deg = 0.0;  ///< declination, [-90, +90]

  /// Canonicalizes RA into [0,360) and clamps Dec into [-90,90].
  Equatorial normalized() const;

  /// "RA=210.2583 Dec=+02.8775" style rendering for logs and tables.
  std::string to_string() const;
};

/// Great-circle separation in degrees, computed with the haversine formula
/// (numerically stable for the small separations typical of cluster work).
double angular_separation_deg(const Equatorial& a, const Equatorial& b);

/// Position angle of b as seen from a, degrees east of north in [0, 360).
double position_angle_deg(const Equatorial& a, const Equatorial& b);

/// True when `p` lies within `radius_deg` of `center` — the Cone Search
/// containment predicate.
bool within_cone(const Equatorial& center, double radius_deg, const Equatorial& p);

/// Gnomonic (TAN) projection of `p` about `center`. Returns standard
/// coordinates (xi, eta) in degrees: xi grows toward increasing RA (east),
/// eta toward increasing Dec (north).
struct TangentPlane {
  double xi_deg = 0.0;
  double eta_deg = 0.0;
};
TangentPlane project_tan(const Equatorial& center, const Equatorial& p);

/// Inverse gnomonic projection: standard coordinates back to the sphere.
Equatorial deproject_tan(const Equatorial& center, const TangentPlane& tp);

/// Moves `center` by (dra, ddec) arcminutes on the tangent plane; used by
/// the cluster generator to place member galaxies.
Equatorial offset_by_arcmin(const Equatorial& center, double east_arcmin,
                            double north_arcmin);

/// Sexagesimal rendering "14h02m31.2s  +02d52m39s" used in catalogs.
std::string to_sexagesimal(const Equatorial& p);

}  // namespace nvo::sky
