// Spatial index for positional catalog queries. The Cone Search handlers
// scan every catalog row; at survey scale (the paper's "terabyte to
// Petabyte scale databases") that is untenable. This is a declination-band
// index with per-band right-ascension sorting: O(log n + k) cone queries,
// correct across the RA wrap and at the poles. Deliberately simpler than
// HTM/HEALPix (which the real NVO adopted) but with the same asymptotics
// for cone workloads.
#pragma once

#include <cstddef>
#include <vector>

#include "sky/coords.hpp"

namespace nvo::sky {

class SpatialIndex {
 public:
  /// Builds over a fixed set of positions (indices into this array are the
  /// ids returned by queries). `bands` controls declination granularity.
  explicit SpatialIndex(std::vector<Equatorial> positions, int bands = 180);

  std::size_t size() const { return positions_.size(); }
  const Equatorial& position(std::size_t id) const { return positions_[id]; }

  /// Ids of every position within `radius_deg` of `center`, ascending id
  /// order. Exact: candidates from the band/RA pre-filter are verified
  /// with the true angular separation.
  std::vector<std::size_t> query_cone(const Equatorial& center,
                                      double radius_deg) const;

  /// Id of the nearest position within `max_radius_deg`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t nearest(const Equatorial& center, double max_radius_deg) const;

  /// Candidate count of the last query (pre-verification); exposed so the
  /// benchmark can report selectivity.
  std::size_t last_candidates() const { return last_candidates_; }

 private:
  struct Entry {
    double ra_deg;
    std::size_t id;
  };
  int band_of(double dec_deg) const;

  std::vector<Equatorial> positions_;
  int bands_;
  double band_height_deg_;
  std::vector<std::vector<Entry>> band_entries_;  // sorted by RA
  mutable std::size_t last_candidates_ = 0;
};

}  // namespace nvo::sky
