#include "sky/cosmology.hpp"

#include <cassert>
#include <cmath>

#include "sky/coords.hpp"

namespace nvo::sky {

double Cosmology::hubble_distance_mpc() const { return kSpeedOfLightKmS / h0_km_s_mpc; }

double Cosmology::efunc(double z) const {
  const double zp1 = 1.0 + z;
  const double e2 = omega_m * zp1 * zp1 * zp1 + omega_k() * zp1 * zp1 + omega_lambda();
  return std::sqrt(std::max(e2, 1e-30));
}

double Cosmology::comoving_distance_mpc(double z) const {
  assert(z >= 0.0);
  if (z <= 0.0) return 0.0;
  // Composite Simpson integration of dz'/E(z') on [0, z].
  const int segments = 256;  // even
  const double h = z / segments;
  double sum = 1.0 / efunc(0.0) + 1.0 / efunc(z);
  for (int i = 1; i < segments; ++i) {
    const double zi = h * i;
    sum += (i % 2 == 1 ? 4.0 : 2.0) / efunc(zi);
  }
  return hubble_distance_mpc() * sum * h / 3.0;
}

double Cosmology::transverse_comoving_distance_mpc(double z) const {
  const double dc = comoving_distance_mpc(z);
  const double ok = omega_k();
  if (std::fabs(ok) < 1e-12) return dc;
  const double dh = hubble_distance_mpc();
  const double sqrt_ok = std::sqrt(std::fabs(ok));
  const double x = sqrt_ok * dc / dh;
  if (ok > 0.0) return dh / sqrt_ok * std::sinh(x);
  return dh / sqrt_ok * std::sin(x);
}

double Cosmology::angular_diameter_distance_mpc(double z) const {
  return transverse_comoving_distance_mpc(z) / (1.0 + z);
}

double Cosmology::luminosity_distance_mpc(double z) const {
  return transverse_comoving_distance_mpc(z) * (1.0 + z);
}

double Cosmology::distance_modulus(double z) const {
  const double dl_mpc = luminosity_distance_mpc(z);
  // 10 pc = 1e-5 Mpc.
  return 5.0 * std::log10(std::max(dl_mpc, 1e-30) / 1e-5);
}

double Cosmology::kpc_per_arcsec(double z) const {
  const double da_kpc = angular_diameter_distance_mpc(z) * 1000.0;
  const double arcsec_to_rad = kDegToRad / kArcsecPerDeg;
  return da_kpc * arcsec_to_rad;
}

double Cosmology::surface_brightness_dimming(double z) const {
  const double zp1 = 1.0 + z;
  return zp1 * zp1 * zp1 * zp1;
}

}  // namespace nvo::sky
