// FLRW cosmology. The paper's galMorph transformation takes (redshift,
// pixScale, zeroPoint, Ho, om, flat) — exactly the parameters needed to turn
// apparent image quantities into physical ones. We implement the distance
// ladder for a (possibly non-flat) matter + lambda universe so the pipeline
// can compute physical pixel scales and rest-frame surface brightness.
#pragma once

namespace nvo::sky {

/// Cosmological model parameters, defaulting to the paper's choice
/// (Ho = 100 h km/s/Mpc, om = 0.3, flat = 1 -> om + ol = 1).
struct Cosmology {
  double h0_km_s_mpc = 100.0;  ///< Hubble constant
  double omega_m = 0.3;        ///< matter density
  bool flat = true;            ///< if true, omega_lambda = 1 - omega_m
  double omega_l = 0.7;        ///< used only when !flat

  double omega_lambda() const { return flat ? 1.0 - omega_m : omega_l; }
  double omega_k() const { return 1.0 - omega_m - omega_lambda(); }

  /// Hubble distance c/H0 in Mpc.
  double hubble_distance_mpc() const;

  /// Dimensionless expansion rate E(z) = H(z)/H0.
  double efunc(double z) const;

  /// Line-of-sight comoving distance in Mpc (Simpson-rule integration of
  /// 1/E(z); converged well below 0.01% for z <= 10 at the default step).
  double comoving_distance_mpc(double z) const;

  /// Transverse comoving distance (handles open/closed curvature).
  double transverse_comoving_distance_mpc(double z) const;

  /// Angular diameter distance D_A = D_M / (1+z) in Mpc.
  double angular_diameter_distance_mpc(double z) const;

  /// Luminosity distance D_L = D_M (1+z) in Mpc.
  double luminosity_distance_mpc(double z) const;

  /// Distance modulus m - M = 5 log10(D_L / 10 pc).
  double distance_modulus(double z) const;

  /// Physical scale in kpc per arcsecond at redshift z.
  double kpc_per_arcsec(double z) const;

  /// Cosmological (1+z)^4 surface-brightness dimming factor (Tolman).
  double surface_brightness_dimming(double z) const;
};

/// Speed of light in km/s.
inline constexpr double kSpeedOfLightKmS = 299792.458;

}  // namespace nvo::sky
