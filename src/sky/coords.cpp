#include "sky/coords.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace nvo::sky {

Equatorial Equatorial::normalized() const {
  Equatorial out = *this;
  out.ra_deg = std::fmod(out.ra_deg, 360.0);
  if (out.ra_deg < 0.0) out.ra_deg += 360.0;
  out.dec_deg = std::clamp(out.dec_deg, -90.0, 90.0);
  return out;
}

std::string Equatorial::to_string() const {
  return format("RA=%.6f Dec=%+.6f", ra_deg, dec_deg);
}

double angular_separation_deg(const Equatorial& a, const Equatorial& b) {
  const double ra1 = a.ra_deg * kDegToRad;
  const double dec1 = a.dec_deg * kDegToRad;
  const double ra2 = b.ra_deg * kDegToRad;
  const double dec2 = b.dec_deg * kDegToRad;
  const double sdra = std::sin((ra2 - ra1) / 2.0);
  const double sddec = std::sin((dec2 - dec1) / 2.0);
  const double h = sddec * sddec + std::cos(dec1) * std::cos(dec2) * sdra * sdra;
  return 2.0 * std::asin(std::min(1.0, std::sqrt(h))) * kRadToDeg;
}

double position_angle_deg(const Equatorial& a, const Equatorial& b) {
  const double ra1 = a.ra_deg * kDegToRad;
  const double dec1 = a.dec_deg * kDegToRad;
  const double ra2 = b.ra_deg * kDegToRad;
  const double dec2 = b.dec_deg * kDegToRad;
  const double dra = ra2 - ra1;
  const double y = std::sin(dra) * std::cos(dec2);
  const double x = std::cos(dec1) * std::sin(dec2) - std::sin(dec1) * std::cos(dec2) * std::cos(dra);
  double pa = std::atan2(y, x) * kRadToDeg;
  if (pa < 0.0) pa += 360.0;
  return pa;
}

bool within_cone(const Equatorial& center, double radius_deg, const Equatorial& p) {
  return angular_separation_deg(center, p) <= radius_deg;
}

TangentPlane project_tan(const Equatorial& center, const Equatorial& p) {
  const double ra0 = center.ra_deg * kDegToRad;
  const double dec0 = center.dec_deg * kDegToRad;
  const double ra = p.ra_deg * kDegToRad;
  const double dec = p.dec_deg * kDegToRad;
  const double cosc = std::sin(dec0) * std::sin(dec) +
                      std::cos(dec0) * std::cos(dec) * std::cos(ra - ra0);
  // cosc <= 0 means the point is on or beyond the horizon of the projection;
  // the cluster fields we project are degrees across, so this indicates
  // caller error. Saturate rather than divide by ~0.
  const double denom = std::max(cosc, 1e-9);
  TangentPlane tp;
  tp.xi_deg = std::cos(dec) * std::sin(ra - ra0) / denom * kRadToDeg;
  tp.eta_deg = (std::cos(dec0) * std::sin(dec) -
                std::sin(dec0) * std::cos(dec) * std::cos(ra - ra0)) /
               denom * kRadToDeg;
  return tp;
}

Equatorial deproject_tan(const Equatorial& center, const TangentPlane& tp) {
  const double ra0 = center.ra_deg * kDegToRad;
  const double dec0 = center.dec_deg * kDegToRad;
  const double xi = tp.xi_deg * kDegToRad;
  const double eta = tp.eta_deg * kDegToRad;
  const double rho = std::sqrt(xi * xi + eta * eta);
  if (rho == 0.0) return center;
  const double c = std::atan(rho);
  const double cosc = std::cos(c);
  const double sinc = std::sin(c);
  const double dec = std::asin(cosc * std::sin(dec0) + eta * sinc * std::cos(dec0) / rho);
  const double ra =
      ra0 + std::atan2(xi * sinc, rho * std::cos(dec0) * cosc - eta * std::sin(dec0) * sinc);
  Equatorial out;
  out.ra_deg = ra * kRadToDeg;
  out.dec_deg = dec * kRadToDeg;
  return out.normalized();
}

Equatorial offset_by_arcmin(const Equatorial& center, double east_arcmin,
                            double north_arcmin) {
  TangentPlane tp;
  tp.xi_deg = east_arcmin / 60.0;
  tp.eta_deg = north_arcmin / 60.0;
  return deproject_tan(center, tp);
}

std::string to_sexagesimal(const Equatorial& p) {
  const Equatorial n = p.normalized();
  const double ra_hours = n.ra_deg / 15.0;
  const int rh = static_cast<int>(ra_hours);
  const int rm = static_cast<int>((ra_hours - rh) * 60.0);
  const double rs = ((ra_hours - rh) * 60.0 - rm) * 60.0;
  const char sign = n.dec_deg < 0.0 ? '-' : '+';
  const double adec = std::fabs(n.dec_deg);
  const int dd = static_cast<int>(adec);
  const int dm = static_cast<int>((adec - dd) * 60.0);
  const double ds = ((adec - dd) * 60.0 - dm) * 60.0;
  return format("%02dh%02dm%04.1fs %c%02dd%02dm%02.0fs", rh, rm, rs, sign, dd, dm, ds);
}

}  // namespace nvo::sky
