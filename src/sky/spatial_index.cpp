#include "sky/spatial_index.hpp"

#include <algorithm>
#include <cmath>

namespace nvo::sky {

SpatialIndex::SpatialIndex(std::vector<Equatorial> positions, int bands)
    : positions_(std::move(positions)),
      bands_(std::max(bands, 1)),
      band_height_deg_(180.0 / bands_),
      band_entries_(static_cast<std::size_t>(bands_)) {
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    positions_[i] = positions_[i].normalized();
    band_entries_[static_cast<std::size_t>(band_of(positions_[i].dec_deg))]
        .push_back({positions_[i].ra_deg, i});
  }
  for (auto& band : band_entries_) {
    std::sort(band.begin(), band.end(),
              [](const Entry& a, const Entry& b) { return a.ra_deg < b.ra_deg; });
  }
}

int SpatialIndex::band_of(double dec_deg) const {
  const int b = static_cast<int>((dec_deg + 90.0) / band_height_deg_);
  return std::clamp(b, 0, bands_ - 1);
}

std::vector<std::size_t> SpatialIndex::query_cone(const Equatorial& center,
                                                  double radius_deg) const {
  std::vector<std::size_t> out;
  if (radius_deg < 0.0) return out;
  const Equatorial c = center.normalized();
  last_candidates_ = 0;

  const int band_lo = band_of(std::max(c.dec_deg - radius_deg, -90.0));
  const int band_hi = band_of(std::min(c.dec_deg + radius_deg, 90.0));

  // Exact small-circle RA extent: a cone of radius r centered at dec d0
  // spans +-asin(sin r / cos d0) in right ascension (attained at the
  // tangent declination), provided the cone does not reach the pole
  // (|d0| + r < 90); otherwise every RA is inside.
  const double sin_r = std::sin(std::min(radius_deg, 180.0) * kDegToRad);
  const double cos_d0 = std::cos(c.dec_deg * kDegToRad);
  const bool full_circle =
      std::fabs(c.dec_deg) + radius_deg >= 90.0 || sin_r >= cos_d0;
  const double half_width =
      full_circle ? 180.0 : std::asin(sin_r / cos_d0) * kRadToDeg;

  for (int b = band_lo; b <= band_hi; ++b) {
    const auto& band = band_entries_[static_cast<std::size_t>(b)];
    if (band.empty()) continue;

    auto scan = [&](double ra_lo, double ra_hi) {
      const auto begin = std::lower_bound(
          band.begin(), band.end(), ra_lo,
          [](const Entry& e, double v) { return e.ra_deg < v; });
      const auto end = std::upper_bound(
          band.begin(), band.end(), ra_hi,
          [](double v, const Entry& e) { return v < e.ra_deg; });
      for (auto it = begin; it != end; ++it) {
        ++last_candidates_;
        if (angular_separation_deg(c, positions_[it->id]) <= radius_deg) {
          out.push_back(it->id);
        }
      }
    };

    if (full_circle) {
      scan(0.0, 360.0);
    } else {
      const double lo = c.ra_deg - half_width;
      const double hi = c.ra_deg + half_width;
      if (lo < 0.0) {
        scan(0.0, hi);
        scan(lo + 360.0, 360.0);
      } else if (hi > 360.0) {
        scan(lo, 360.0);
        scan(0.0, hi - 360.0);
      } else {
        scan(lo, hi);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SpatialIndex::nearest(const Equatorial& center,
                                  double max_radius_deg) const {
  const auto candidates = query_cone(center, max_radius_deg);
  std::size_t best = npos;
  double best_sep = max_radius_deg;
  for (std::size_t id : candidates) {
    const double sep = angular_separation_deg(center, positions_[id]);
    if (sep <= best_sep) {
      best_sep = sep;
      best = id;
    }
  }
  return best;
}

}  // namespace nvo::sky
