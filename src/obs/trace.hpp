// Hierarchical trace spans for the full request path: portal request →
// federation cone/SIA calls → Pegasus planning/reduction → DAGMan node
// execution → morphology kernel. Every span records both timelines of this
// reproduction — real wall time (steady_clock) and the fabric's simulated
// time (obs::SimClock) — plus named counters (retries, cache hits, bytes,
// rows) and string annotations. Exports:
//
//   * to_json()         — the span tree as nested JSON (machine-readable),
//   * to_chrome_trace() — Chrome trace_event format, loadable in
//                         chrome://tracing / Perfetto (wall timeline as
//                         pid 1, simulated timeline as pid 2),
//   * to_tree_text()    — a canonical, timing-free rendition (children
//                         sorted by name, repeated siblings collapsed with
//                         summed counters) used by golden-file tests.
//
// Thread model: spans may be started and ended on any thread; parenting is
// implicit per thread (innermost open span on the starting thread) or
// explicit via span_under() for work handed to a pool. A null Tracer* (or a
// disabled tracer) yields inert spans, so instrumented code pays nothing
// when tracing is off.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.hpp"

namespace nvo::obs {

class Tracer;

/// One finished (or still-open) span, as stored by the tracer.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::string name;
  std::string category;
  int thread_index = 0;       ///< stable small index per observed thread
  bool open = true;
  double wall_start_ms = 0.0;  ///< since tracer construction
  double wall_dur_ms = 0.0;
  double sim_start_ms = 0.0;   ///< SimClock value; 0 when no clock attached
  double sim_dur_ms = 0.0;
  /// Deterministic quantities (counts, rows, bytes): accumulated by key.
  std::vector<std::pair<std::string, double>> counters;
  /// Free-form string annotations, in insertion order.
  std::vector<std::pair<std::string, std::string>> notes;
};

/// RAII handle to an open span. Movable, not copyable; ends the span on
/// destruction unless end() was called. A default-constructed Span is inert.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return id_; }

  /// Accumulates `value` into the named counter (creates it at 0).
  void count(const std::string& key, double value);
  /// Attaches (or appends) a string annotation.
  void note(const std::string& key, const std::string& value);
  /// Ends the span now (durations captured at this point).
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}

  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Span factory + storage. One tracer observes one logical request path (or
/// a whole campaign); attach the fabric's SimClock to get the simulated
/// timeline alongside wall time.
class Tracer {
 public:
  Tracer();

  /// Attaches the simulated clock (may be null to detach). The clock must
  /// outlive the tracer.
  void set_sim_clock(const SimClock* clock);

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Starts a span as a child of the innermost open span on this thread
  /// (a root span when there is none).
  Span span(const std::string& name, const std::string& category = "");
  /// Starts a span under an explicit parent id — for tasks submitted to a
  /// thread pool, where the logical parent lives on another thread. Parent
  /// id 0 starts a root span.
  Span span_under(std::uint64_t parent_id, const std::string& name,
                  const std::string& category = "");

  /// Innermost open span id on the calling thread (0 when none) — capture
  /// this before submitting work to a pool, then use span_under().
  std::uint64_t current_span_id() const;

  /// Appends an already-finished span with explicit simulated-time bounds —
  /// for retrospective events like simulated DAGMan node executions, whose
  /// timing comes out of the discrete-event run rather than live code.
  /// Returns the new span's id (0 when tracing is disabled).
  std::uint64_t record_span(std::uint64_t parent_id, const std::string& name,
                            const std::string& category, double sim_start_ms,
                            double sim_dur_ms,
                            std::vector<std::pair<std::string, double>> counters = {},
                            std::vector<std::pair<std::string, std::string>> notes = {});

  /// Snapshot of every recorded span, in creation order.
  std::vector<SpanRecord> spans() const;
  std::size_t span_count() const;
  void clear();

  std::string to_json() const;
  std::string to_chrome_trace() const;
  std::string to_tree_text() const;

 private:
  friend class Span;
  void end_span(std::uint64_t id);
  void add_counter(std::uint64_t id, const std::string& key, double value);
  void add_note(std::uint64_t id, const std::string& key, const std::string& value);
  double wall_now_ms() const;
  int thread_index_locked(std::thread::id tid);

  mutable std::mutex mu_;
  const SimClock* sim_clock_ = nullptr;
  bool enabled_ = true;
  std::uint64_t next_id_ = 1;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> records_;                    ///< creation order
  std::map<std::uint64_t, std::size_t> index_;         ///< id -> records_ slot
  std::map<std::thread::id, std::vector<std::uint64_t>> stacks_;
  std::map<std::thread::id, int> thread_indices_;
};

/// Convenience: a span from a possibly-null tracer (inert when null or
/// disabled). Instrumented code uses this so tracing stays optional.
inline Span start_span(Tracer* tracer, const std::string& name,
                       const std::string& category = "") {
  return tracer ? tracer->span(name, category) : Span();
}

}  // namespace nvo::obs
