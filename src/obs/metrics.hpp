// Unified metrics: one registry in front of the ad-hoc counters that grew
// across the services layer (HttpFabric::Metrics, ReplicaCache::Stats,
// per-endpoint CircuitBreaker state, thread-pool queue depth).
//
// The registry is pull-based: components register named callbacks
// (counters and gauges) or own histograms, and snapshot() evaluates
// everything at one instant. Components keep their native structs — the
// bridge functions that adapt them live next to the component (see
// services::register_metrics overloads), so obs stays dependency-free.
//
// Naming convention (see DESIGN.md §9): dot-separated, lowercase,
// `<component>.<object>.<quantity>`, e.g. `fabric.requests`,
// `fabric.route.mast.skyview.failures`, `cache.replica.hits`,
// `breaker.cadc.state`, `pool.queue_depth`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nvo::obs {

/// Fixed-bucket histogram (cumulative counts are derived at snapshot time).
/// Bounds are upper edges; values above the last bound land in an implicit
/// overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double value);

  std::vector<double> bounds() const { return bounds_; }
  /// Per-bucket counts, size = bounds.size() + 1 (last is overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total_count() const;
  double total_sum() const;
  /// Approximate q-quantile (q in [0,1]) by linear interpolation within the
  /// bucket holding the target rank (overflow bucket reports the last
  /// bound). 0 when the histogram is empty.
  double quantile(double q) const;

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Point-in-time evaluation of every registered metric.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< size = bounds.size() + 1
    std::uint64_t total_count = 0;
    double sum = 0.0;

    /// Same estimator as Histogram::quantile, over the snapshot's counts.
    double quantile(double q) const;
  };

  /// Monotonic totals (requests, bytes, hits...), keyed by metric name.
  std::map<std::string, double> counters;
  /// Instantaneous values (queue depth, breaker state, cache entries...).
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Counter value by name (0 when absent) — convenience for tests.
  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  std::string to_json() const;
  std::string to_text() const;  ///< one `name value` line per metric, sorted
};

/// Named metric registry. Thread-safe; callbacks are invoked under the
/// registry lock during snapshot(), so they must not call back into the
/// registry. Re-registering a name replaces the previous definition.
class MetricsRegistry {
 public:
  using Callback = std::function<double()>;

  /// A collector contributes any number of named counters/gauges at
  /// snapshot time — for metric families whose member set grows at runtime
  /// (per-route fabric counters, per-endpoint breaker states).
  using Collector =
      std::function<void(std::map<std::string, double>& counters,
                         std::map<std::string, double>& gauges)>;

  /// Registers a monotonic total, read via callback at snapshot time.
  void register_counter(const std::string& name, Callback read);
  /// Registers an instantaneous value, read via callback at snapshot time.
  void register_gauge(const std::string& name, Callback read);
  /// Registers a dynamic family under `id` (replaces an existing one).
  void register_collector(const std::string& id, Collector collect);
  /// Creates (or returns the existing) histogram with the given buckets.
  /// The registry owns it; the pointer stays valid for the registry's life.
  Histogram* histogram(const std::string& name, std::vector<double> bucket_bounds);

  void unregister(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Callback> counters_;
  std::map<std::string, Callback> gauges_;
  std::map<std::string, Collector> collectors_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nvo::obs
