#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace nvo::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[32];
  // Counters are counts/bytes in practice; print integers exactly and
  // timings with microsecond resolution.
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Span::count(const std::string& key, double value) {
  if (tracer_) tracer_->add_counter(id_, key, value);
}

void Span::note(const std::string& key, const std::string& value) {
  if (tracer_) tracer_->add_note(id_, key, value);
}

void Span::end() {
  if (tracer_) tracer_->end_span(id_);
  tracer_ = nullptr;
  id_ = 0;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void Tracer::set_sim_clock(const SimClock* clock) {
  std::lock_guard lock(mu_);
  sim_clock_ = clock;
}

void Tracer::set_enabled(bool enabled) {
  std::lock_guard lock(mu_);
  enabled_ = enabled;
}

bool Tracer::enabled() const {
  std::lock_guard lock(mu_);
  return enabled_;
}

double Tracer::wall_now_ms() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

int Tracer::thread_index_locked(std::thread::id tid) {
  auto it = thread_indices_.find(tid);
  if (it == thread_indices_.end()) {
    const int index = static_cast<int>(thread_indices_.size()) + 1;
    it = thread_indices_.emplace(tid, index).first;
  }
  return it->second;
}

Span Tracer::span(const std::string& name, const std::string& category) {
  const double wall = wall_now_ms();
  std::lock_guard lock(mu_);
  if (!enabled_) return Span();
  const auto tid = std::this_thread::get_id();
  auto& stack = stacks_[tid];
  const std::uint64_t parent = stack.empty() ? 0 : stack.back();

  SpanRecord record;
  record.id = next_id_++;
  record.parent = parent;
  record.name = name;
  record.category = category;
  record.thread_index = thread_index_locked(tid);
  record.wall_start_ms = wall;
  if (sim_clock_) record.sim_start_ms = sim_clock_->now_ms();
  index_[record.id] = records_.size();
  stack.push_back(record.id);
  records_.push_back(std::move(record));
  return Span(this, records_.back().id);
}

Span Tracer::span_under(std::uint64_t parent_id, const std::string& name,
                        const std::string& category) {
  const double wall = wall_now_ms();
  std::lock_guard lock(mu_);
  if (!enabled_) return Span();
  const auto tid = std::this_thread::get_id();

  SpanRecord record;
  record.id = next_id_++;
  record.parent = parent_id;
  record.name = name;
  record.category = category;
  record.thread_index = thread_index_locked(tid);
  record.wall_start_ms = wall;
  if (sim_clock_) record.sim_start_ms = sim_clock_->now_ms();
  index_[record.id] = records_.size();
  stacks_[tid].push_back(record.id);
  records_.push_back(std::move(record));
  return Span(this, records_.back().id);
}

std::uint64_t Tracer::record_span(
    std::uint64_t parent_id, const std::string& name, const std::string& category,
    double sim_start_ms, double sim_dur_ms,
    std::vector<std::pair<std::string, double>> counters,
    std::vector<std::pair<std::string, std::string>> notes) {
  const double wall = wall_now_ms();
  std::lock_guard lock(mu_);
  if (!enabled_) return 0;

  SpanRecord record;
  record.id = next_id_++;
  record.parent = parent_id;
  record.name = name;
  record.category = category;
  record.thread_index = thread_index_locked(std::this_thread::get_id());
  record.open = false;
  record.wall_start_ms = wall;
  record.wall_dur_ms = 0.0;
  record.sim_start_ms = sim_start_ms;
  record.sim_dur_ms = sim_dur_ms;
  record.counters = std::move(counters);
  record.notes = std::move(notes);
  index_[record.id] = records_.size();
  records_.push_back(std::move(record));
  return records_.back().id;
}

std::uint64_t Tracer::current_span_id() const {
  std::lock_guard lock(mu_);
  const auto it = stacks_.find(std::this_thread::get_id());
  if (it == stacks_.end() || it->second.empty()) return 0;
  return it->second.back();
}

void Tracer::end_span(std::uint64_t id) {
  const double wall = wall_now_ms();
  std::lock_guard lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  SpanRecord& record = records_[it->second];
  if (!record.open) return;
  record.open = false;
  record.wall_dur_ms = wall - record.wall_start_ms;
  if (sim_clock_) record.sim_dur_ms = sim_clock_->now_ms() - record.sim_start_ms;
  // Unwind from the stack it was pushed onto. Spans normally end on their
  // own thread in LIFO order; an out-of-order end (moved handle) is removed
  // from wherever it sits so the stacks never corrupt.
  for (auto& [tid, stack] : stacks_) {
    const auto pos = std::find(stack.begin(), stack.end(), id);
    if (pos != stack.end()) {
      stack.erase(pos);
      break;
    }
  }
}

void Tracer::add_counter(std::uint64_t id, const std::string& key, double value) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  SpanRecord& record = records_[it->second];
  for (auto& [k, v] : record.counters) {
    if (k == key) {
      v += value;
      return;
    }
  }
  record.counters.emplace_back(key, value);
}

void Tracer::add_note(std::uint64_t id, const std::string& key,
                      const std::string& value) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  records_[it->second].notes.emplace_back(key, value);
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard lock(mu_);
  return records_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  records_.clear();
  index_.clear();
  stacks_.clear();
  // thread_indices_ kept: indices stay stable across clears.
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

namespace {

/// Children of each span, in creation order (creation order is stable; the
/// records vector is already sorted by id).
std::map<std::uint64_t, std::vector<const SpanRecord*>> child_map(
    const std::vector<SpanRecord>& records) {
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& r : records) children[r.parent].push_back(&r);
  return children;
}

void append_span_json(std::string& out,
                      const std::map<std::uint64_t, std::vector<const SpanRecord*>>& kids,
                      const SpanRecord& r, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  out += pad + "{\"name\": \"";
  append_escaped(out, r.name);
  out += "\", \"category\": \"";
  append_escaped(out, r.category);
  out += "\"";
  out += ", \"wall_start_ms\": ";
  append_number(out, r.wall_start_ms);
  out += ", \"wall_dur_ms\": ";
  append_number(out, r.wall_dur_ms);
  out += ", \"sim_start_ms\": ";
  append_number(out, r.sim_start_ms);
  out += ", \"sim_dur_ms\": ";
  append_number(out, r.sim_dur_ms);
  out += ", \"thread\": ";
  append_number(out, r.thread_index);
  if (!r.counters.empty()) {
    out += ", \"counters\": {";
    bool first = true;
    for (const auto& [k, v] : r.counters) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      append_escaped(out, k);
      out += "\": ";
      append_number(out, v);
    }
    out += "}";
  }
  if (!r.notes.empty()) {
    out += ", \"notes\": {";
    bool first = true;
    for (const auto& [k, v] : r.notes) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      append_escaped(out, k);
      out += "\": \"";
      append_escaped(out, v);
      out += "\"";
    }
    out += "}";
  }
  const auto it = kids.find(r.id);
  if (it != kids.end() && !it->second.empty()) {
    out += ", \"children\": [\n";
    bool first = true;
    for (const SpanRecord* child : it->second) {
      if (!first) out += ",\n";
      first = false;
      append_span_json(out, kids, *child, depth + 1);
    }
    out += "\n" + pad + "]";
  }
  out += "}";
}

}  // namespace

std::string Tracer::to_json() const {
  const auto records = spans();
  const auto kids = child_map(records);
  std::string out = "{\"spans\": [\n";
  bool first = true;
  const auto roots = kids.find(0);
  if (roots != kids.end()) {
    for (const SpanRecord* root : roots->second) {
      if (!first) out += ",\n";
      first = false;
      append_span_json(out, kids, *root, 1);
    }
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::to_chrome_trace() const {
  const auto records = spans();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"wall time\"}},\n";
  out += "{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"simulated time\"}}";
  bool have_sim = false;
  {
    std::lock_guard lock(mu_);
    have_sim = sim_clock_ != nullptr;
  }
  for (const SpanRecord& r : records) {
    const auto emit = [&](int pid, int tid, double start_ms, double dur_ms) {
      out += ",\n{\"name\": \"";
      append_escaped(out, r.name);
      out += "\", \"cat\": \"";
      append_escaped(out, r.category.empty() ? std::string("span") : r.category);
      out += "\", \"ph\": \"X\", \"pid\": ";
      append_number(out, pid);
      out += ", \"tid\": ";
      append_number(out, tid);
      out += ", \"ts\": ";
      append_number(out, start_ms * 1000.0);  // microseconds
      out += ", \"dur\": ";
      append_number(out, dur_ms * 1000.0);
      out += ", \"args\": {\"span_id\": ";
      append_number(out, static_cast<double>(r.id));
      out += ", \"parent_id\": ";
      append_number(out, static_cast<double>(r.parent));
      for (const auto& [k, v] : r.counters) {
        out += ", \"";
        append_escaped(out, k);
        out += "\": ";
        append_number(out, v);
      }
      for (const auto& [k, v] : r.notes) {
        out += ", \"";
        append_escaped(out, k);
        out += "\": \"";
        append_escaped(out, v);
        out += "\"";
      }
      out += "}}";
    };
    emit(1, r.thread_index, r.wall_start_ms, r.wall_dur_ms);
    // The simulated timeline is global (one clock), so it renders as a
    // single track; nested spans still read correctly because Chrome
    // stacks contained X events.
    if (have_sim) emit(2, 1, r.sim_start_ms, r.sim_dur_ms);
  }
  out += "\n]}\n";
  return out;
}

namespace {

void append_tree_text(std::string& out,
                      const std::map<std::uint64_t, std::vector<const SpanRecord*>>& kids,
                      const std::vector<const SpanRecord*>& siblings, int depth) {
  // Sort by name (stable: creation order breaks ties), then collapse runs
  // of the same name into one line with summed counters. Timings are
  // deliberately absent: this rendition is the golden-file surface.
  std::vector<const SpanRecord*> sorted = siblings;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->name < b->name;
                   });
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j]->name == sorted[i]->name) ++j;
    const std::size_t n = j - i;
    std::vector<std::pair<std::string, double>> counters;
    std::vector<const SpanRecord*> group_children;
    for (std::size_t k = i; k < j; ++k) {
      for (const auto& [key, value] : sorted[k]->counters) {
        bool found = false;
        for (auto& [ck, cv] : counters) {
          if (ck == key) {
            cv += value;
            found = true;
            break;
          }
        }
        if (!found) counters.emplace_back(key, value);
      }
      const auto it = kids.find(sorted[k]->id);
      if (it != kids.end()) {
        group_children.insert(group_children.end(), it->second.begin(),
                              it->second.end());
      }
    }
    out += pad + sorted[i]->name;
    if (!sorted[i]->category.empty()) out += " [" + sorted[i]->category + "]";
    if (n > 1) out += " x" + std::to_string(n);
    if (!counters.empty()) {
      std::sort(counters.begin(), counters.end());
      out += " {";
      bool first = true;
      for (const auto& [k, v] : counters) {
        if (!first) out += ", ";
        first = false;
        out += k + "=";
        append_number(out, v);
      }
      out += "}";
    }
    for (const auto& [k, v] : sorted[i]->notes) {
      if (n == 1) out += " " + k + "=" + v;
    }
    out += "\n";
    append_tree_text(out, kids, group_children, depth + 1);
    i = j;
  }
}

}  // namespace

std::string Tracer::to_tree_text() const {
  const auto records = spans();
  const auto kids = child_map(records);
  std::string out;
  const auto roots = kids.find(0);
  if (roots != kids.end()) append_tree_text(out, kids, roots->second, 0);
  return out;
}

}  // namespace nvo::obs
