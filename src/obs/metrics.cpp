#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace nvo::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::lock_guard lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  total_ += 1;
  sum_ += value;
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::lock_guard lock(mu_);
  return counts_;
}

std::uint64_t Histogram::total_count() const {
  std::lock_guard lock(mu_);
  return total_;
}

double Histogram::total_sum() const {
  std::lock_guard lock(mu_);
  return sum_;
}

namespace {
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::uint64_t total, double q) {
  if (total == 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Target rank in [1, total]; walk the cumulative counts to its bucket.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += counts[i];
    if (static_cast<double>(cum) < rank || counts[i] == 0) continue;
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}
}  // namespace

double Histogram::quantile(double q) const {
  std::lock_guard lock(mu_);
  return bucket_quantile(bounds_, counts_, total_, q);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

double MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0.0 : it->second;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

double MetricsSnapshot::HistogramData::quantile(double q) const {
  return bucket_quantile(bounds, counts, total_count, q);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": ";
    append_number(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": ";
    append_number(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ", ";
      append_number(out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ", ";
      append_number(out, static_cast<double>(h.counts[i]));
    }
    out += "], \"count\": ";
    append_number(out, static_cast<double>(h.total_count));
    out += ", \"sum\": ";
    append_number(out, h.sum);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " ";
    append_number(out, value);
    out += "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " ";
    append_number(out, value);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name + ".count ";
    append_number(out, static_cast<double>(h.total_count));
    out += "\n" + name + ".sum ";
    append_number(out, h.sum);
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void MetricsRegistry::register_counter(const std::string& name, Callback read) {
  std::lock_guard lock(mu_);
  counters_[name] = std::move(read);
}

void MetricsRegistry::register_gauge(const std::string& name, Callback read) {
  std::lock_guard lock(mu_);
  gauges_[name] = std::move(read);
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bucket_bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(std::move(bucket_bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::register_collector(const std::string& id, Collector collect) {
  std::lock_guard lock(mu_);
  collectors_[id] = std::move(collect);
}

void MetricsRegistry::unregister(const std::string& name) {
  std::lock_guard lock(mu_);
  counters_.erase(name);
  gauges_.erase(name);
  collectors_.erase(name);
  histograms_.erase(name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, read] : counters_) snap.counters[name] = read();
  for (const auto& [name, read] : gauges_) snap.gauges[name] = read();
  for (const auto& [id, collect] : collectors_) collect(snap.counters, snap.gauges);
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.counts = h->counts();
    data.total_count = h->total_count();
    data.sum = h->total_sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

}  // namespace nvo::obs
