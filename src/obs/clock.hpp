// The process's simulated clock, extracted from HttpFabric's metrics.
//
// History: the fabric's now_ms() used to be literally
// `metrics_.total_elapsed_ms`, so reset_metrics() rewound simulated time —
// un-tripping circuit breakers (their cool-downs are scheduled against
// now_ms) and replaying chaos fault windows (keyed on [start_ms, end_ms) of
// the same clock). SimClock fixes that class of bug structurally: it only
// advances. There is deliberately no reset(); counters are resettable,
// time is not.
#pragma once

#include <atomic>

namespace nvo::obs {

/// Monotonic simulated milliseconds. Thread-safe and lock-free: readers see
/// a non-decreasing value, writers accumulate with fetch_add.
class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  /// Current simulated time in milliseconds since construction.
  double now_ms() const { return now_ms_.load(std::memory_order_relaxed); }

  /// Advances the clock. Non-positive (and NaN) deltas are ignored, so the
  /// clock cannot move backwards through any public interface.
  void advance(double ms) {
    if (!(ms > 0.0)) return;
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_ms_{0.0};
};

}  // namespace nvo::obs
