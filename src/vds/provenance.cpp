#include "vds/provenance.hpp"

#include <algorithm>
#include <deque>

#include "common/strings.hpp"

namespace nvo::vds {

void ProvenanceCatalog::record(ProvenanceRecord record) {
  // Drop stale consumer edges when a product is re-derived differently.
  const auto old = records_.find(record.lfn);
  if (old != records_.end()) {
    for (const std::string& input : old->second.inputs) {
      const auto it = consumers_.find(input);
      if (it != consumers_.end()) it->second.erase(record.lfn);
    }
  }
  for (const std::string& input : record.inputs) {
    consumers_[input].insert(record.lfn);
  }
  records_[record.lfn] = std::move(record);
}

void ProvenanceCatalog::record_execution(const Dag& concrete,
                                         const std::vector<std::string>& succeeded,
                                         double completed_at_s) {
  for (const std::string& id : succeeded) {
    const DagNode* n = concrete.node(id);
    if (!n || n->type != JobType::kCompute) continue;
    for (const std::string& lfn : n->outputs) {
      ProvenanceRecord r;
      r.lfn = lfn;
      r.derivation = n->id;
      r.transformation = n->transformation;
      r.parameters = n->args;
      r.inputs = n->inputs;
      r.site = n->site;
      r.completed_at_s = completed_at_s;
      record(std::move(r));
    }
  }
}

bool ProvenanceCatalog::has(const std::string& lfn) const {
  return records_.count(lfn) != 0;
}

Expected<ProvenanceRecord> ProvenanceCatalog::lookup(const std::string& lfn) const {
  const auto it = records_.find(lfn);
  if (it == records_.end()) {
    return Error(ErrorCode::kNotFound, "no provenance for '" + lfn + "'");
  }
  return it->second;
}

std::vector<std::string> ProvenanceCatalog::lineage(const std::string& lfn) const {
  // Depth-first post-order gives ancestors-before-descendants.
  std::vector<std::string> out;
  std::set<std::string> visited;
  std::vector<std::pair<std::string, bool>> stack{{lfn, false}};
  while (!stack.empty()) {
    auto [current, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      if (current != lfn) out.push_back(current);
      continue;
    }
    if (!visited.insert(current).second) continue;
    stack.emplace_back(current, true);
    const auto it = records_.find(current);
    if (it == records_.end()) continue;  // raw input
    for (const std::string& input : it->second.inputs) {
      stack.emplace_back(input, false);
    }
  }
  return out;
}

std::string ProvenanceCatalog::lineage_text(const std::string& lfn) const {
  std::string out;
  std::vector<std::string> chain = lineage(lfn);
  chain.push_back(lfn);
  for (const std::string& file : chain) {
    const auto it = records_.find(file);
    if (it == records_.end()) {
      out += format("%s (raw input)\n", file.c_str());
    } else {
      out += format("%s  <- %s/%s @%s (%zu inputs)\n", file.c_str(),
                    it->second.derivation.c_str(),
                    it->second.transformation.c_str(), it->second.site.c_str(),
                    it->second.inputs.size());
    }
  }
  return out;
}

std::vector<std::string> ProvenanceCatalog::downstream_of(const std::string& lfn) const {
  std::vector<std::string> out;
  std::set<std::string> visited{lfn};
  std::deque<std::string> frontier{lfn};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    const auto it = consumers_.find(current);
    if (it == consumers_.end()) continue;
    for (const std::string& product : it->second) {
      if (visited.insert(product).second) {
        out.push_back(product);
        frontier.push_back(product);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nvo::vds
