// Provenance: the other half of GriPhyN's "virtual data and provenance"
// (§3.3). Records, for every materialized logical file, the derivation and
// transformation that produced it, the actual parameters, the inputs it was
// derived from, and where/when it ran — and answers the two questions a
// virtual-data system must: "how was this file made?" (lineage) and "if
// this file changes, what becomes stale?" (invalidation).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "vds/dag.hpp"

namespace nvo::vds {

/// One materialization event.
struct ProvenanceRecord {
  std::string lfn;             ///< the product
  std::string derivation;      ///< DV name
  std::string transformation;  ///< TR name
  std::map<std::string, std::string> parameters;  ///< actual scalar args
  std::vector<std::string> inputs;                ///< logical inputs consumed
  std::string site;            ///< where it ran
  double completed_at_s = 0.0; ///< simulated completion time
};

class ProvenanceCatalog {
 public:
  /// Records a materialization; re-deriving the same lfn overwrites (the
  /// newest derivation wins, as in the VDS).
  void record(ProvenanceRecord record);

  /// Ingests every succeeded compute node of an executed concrete DAG.
  void record_execution(const Dag& concrete,
                        const std::vector<std::string>& succeeded_nodes,
                        double completed_at_s = 0.0);

  bool has(const std::string& lfn) const;
  Expected<ProvenanceRecord> lookup(const std::string& lfn) const;
  std::size_t size() const { return records_.size(); }

  /// Full upstream lineage of a file: every ancestor lfn (transitively),
  /// in dependency order (furthest ancestors first). Files with no record
  /// (raw inputs) appear as leaves of the ancestry.
  std::vector<std::string> lineage(const std::string& lfn) const;

  /// Derivation chain rendering: "a --[d1/t]--> b --[d2/t]--> c".
  std::string lineage_text(const std::string& lfn) const;

  /// Invalidation: every recorded product transitively derived from `lfn`
  /// (not including `lfn` itself). These are the files that must be
  /// re-derived when `lfn` changes — the cache-coherence question behind
  /// Pegasus's reuse policy.
  std::vector<std::string> downstream_of(const std::string& lfn) const;

 private:
  std::map<std::string, ProvenanceRecord> records_;       // lfn -> record
  std::map<std::string, std::set<std::string>> consumers_; // lfn -> products
};

}  // namespace nvo::vds
