#include "vds/chimera.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace nvo::vds {

Status VirtualDataCatalog::define_transformation(Transformation tr) {
  if (transformations_.count(tr.name)) {
    return Error(ErrorCode::kAlreadyExists, "transformation " + tr.name);
  }
  std::set<std::string> seen;
  for (const FormalArg& a : tr.args) {
    if (!seen.insert(a.name).second) {
      return Error(ErrorCode::kInvalidArgument,
                   "duplicate formal argument '" + a.name + "' in TR " + tr.name);
    }
  }
  transformations_[tr.name] = std::move(tr);
  return Status::Ok();
}

Status VirtualDataCatalog::define_derivation(Derivation dv) {
  if (derivations_.count(dv.name)) {
    return Error(ErrorCode::kAlreadyExists, "derivation " + dv.name);
  }
  const auto tr_it = transformations_.find(dv.transformation);
  if (tr_it == transformations_.end()) {
    return Error(ErrorCode::kNotFound,
                 "DV " + dv.name + " references unknown TR " + dv.transformation);
  }
  const Transformation& tr = tr_it->second;
  // Every binding names a formal; file directions match.
  for (const auto& [formal_name, actual] : dv.bindings) {
    const FormalArg* formal = tr.find_arg(formal_name);
    if (!formal) {
      return Error(ErrorCode::kInvalidArgument,
                   "DV " + dv.name + " binds unknown argument '" + formal_name + "'");
    }
    if (actual.is_file && actual.direction != formal->direction) {
      return Error(ErrorCode::kInvalidArgument,
                   "DV " + dv.name + " direction mismatch on '" + formal_name + "'");
    }
    if (!actual.is_file && formal->direction == Direction::kOut) {
      return Error(ErrorCode::kInvalidArgument,
                   "DV " + dv.name + " binds scalar to out argument '" + formal_name +
                       "'");
    }
  }
  // Every formal is bound.
  for (const FormalArg& formal : tr.args) {
    if (!dv.bindings.count(formal.name)) {
      return Error(ErrorCode::kInvalidArgument,
                   "DV " + dv.name + " leaves argument '" + formal.name + "' unbound");
    }
  }
  // Single-producer rule.
  for (const std::string& lfn : dv.output_files()) {
    const auto it = producer_of_.find(lfn);
    if (it != producer_of_.end()) {
      return Error(ErrorCode::kAlreadyExists,
                   "logical file '" + lfn + "' already produced by " + it->second);
    }
  }
  for (const std::string& lfn : dv.output_files()) producer_of_[lfn] = dv.name;
  derivations_[dv.name] = std::move(dv);
  return Status::Ok();
}

Status VirtualDataCatalog::ingest(const VdlDocument& doc) {
  for (const Transformation& tr : doc.transformations) {
    const Status s = define_transformation(tr);
    if (!s.ok()) return s;
  }
  for (const Derivation& dv : doc.derivations) {
    const Status s = define_derivation(dv);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

const Transformation* VirtualDataCatalog::transformation(const std::string& name) const {
  const auto it = transformations_.find(name);
  return it == transformations_.end() ? nullptr : &it->second;
}

const Derivation* VirtualDataCatalog::derivation(const std::string& name) const {
  const auto it = derivations_.find(name);
  return it == derivations_.end() ? nullptr : &it->second;
}

const Derivation* VirtualDataCatalog::producer(const std::string& logical_file) const {
  const auto it = producer_of_.find(logical_file);
  if (it == producer_of_.end()) return nullptr;
  return derivation(it->second);
}

Expected<Dag> compose_abstract_workflow(const VirtualDataCatalog& catalog,
                                        const std::vector<std::string>& requests) {
  Dag dag;
  // Breadth-first walk backwards from the requested files through their
  // producing derivations.
  std::deque<const Derivation*> frontier;
  std::set<std::string> enqueued;  // derivation names already queued

  for (const std::string& lfn : requests) {
    const Derivation* dv = catalog.producer(lfn);
    if (!dv) {
      return Error(ErrorCode::kNotFound,
                   "no derivation produces requested file '" + lfn + "'");
    }
    if (enqueued.insert(dv->name).second) frontier.push_back(dv);
  }

  while (!frontier.empty()) {
    const Derivation* dv = frontier.front();
    frontier.pop_front();
    DagNode node;
    node.id = dv->name;
    node.type = JobType::kCompute;
    node.transformation = dv->transformation;
    node.inputs = dv->input_files();
    node.outputs = dv->output_files();
    node.args = dv->scalar_args();
    const Status s = dag.add_node(std::move(node));
    if (!s.ok()) return s.error();
    for (const std::string& input : dv->input_files()) {
      const Derivation* upstream = catalog.producer(input);
      if (!upstream) continue;  // raw input — fine, feasibility checks later
      if (enqueued.insert(upstream->name).second) frontier.push_back(upstream);
    }
  }

  // Dependency edges via file flow.
  std::map<std::string, std::string> produced_by;  // lfn -> node id (in dag)
  for (const std::string& id : dag.node_ids()) {
    for (const std::string& lfn : dag.node(id)->outputs) produced_by[lfn] = id;
  }
  for (const std::string& id : dag.node_ids()) {
    for (const std::string& lfn : dag.node(id)->inputs) {
      const auto it = produced_by.find(lfn);
      if (it != produced_by.end()) {
        const Status s = dag.add_edge(it->second, id);
        if (!s.ok()) return s.error();
      }
    }
  }

  // A derivation set with circular file dependencies is not a workflow.
  auto order = dag.topological_order();
  if (!order.ok()) return order.error();
  return dag;
}

std::vector<std::string> raw_inputs(const Dag& dag) {
  std::set<std::string> produced;
  for (const std::string& id : dag.node_ids()) {
    for (const std::string& lfn : dag.node(id)->outputs) produced.insert(lfn);
  }
  std::set<std::string> raw;
  for (const std::string& id : dag.node_ids()) {
    for (const std::string& lfn : dag.node(id)->inputs) {
      if (!produced.count(lfn)) raw.insert(lfn);
    }
  }
  return {raw.begin(), raw.end()};
}

}  // namespace nvo::vds
