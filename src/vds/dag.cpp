#include "vds/dag.hpp"

#include <algorithm>
#include <deque>

#include "common/strings.hpp"

namespace nvo::vds {

const std::vector<std::string> Dag::kEmpty;

const char* to_string(JobType t) {
  switch (t) {
    case JobType::kCompute:
      return "compute";
    case JobType::kTransfer:
      return "transfer";
    case JobType::kRegister:
      return "register";
  }
  return "?";
}

Status Dag::add_node(DagNode node) {
  if (index_.count(node.id)) {
    return Error(ErrorCode::kAlreadyExists, "node " + node.id);
  }
  index_[node.id] = nodes_.size();
  parents_[node.id];
  children_[node.id];
  nodes_.push_back(std::move(node));
  return Status::Ok();
}

Status Dag::add_edge(const std::string& parent, const std::string& child) {
  if (!index_.count(parent)) return Error(ErrorCode::kNotFound, "node " + parent);
  if (!index_.count(child)) return Error(ErrorCode::kNotFound, "node " + child);
  auto& kids = children_[parent];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) return Status::Ok();
  kids.push_back(child);
  parents_[child].push_back(parent);
  return Status::Ok();
}

bool Dag::has_node(const std::string& id) const { return index_.count(id) != 0; }

const DagNode* Dag::node(const std::string& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

DagNode* Dag::mutable_node(const std::string& id) {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::size_t Dag::num_edges() const {
  std::size_t n = 0;
  for (const auto& [id, kids] : children_) n += kids.size();
  return n;
}

std::vector<std::string> Dag::node_ids() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const DagNode& n : nodes_) out.push_back(n.id);
  return out;
}

const std::vector<std::string>& Dag::parents(const std::string& id) const {
  const auto it = parents_.find(id);
  return it == parents_.end() ? kEmpty : it->second;
}

const std::vector<std::string>& Dag::children(const std::string& id) const {
  const auto it = children_.find(id);
  return it == children_.end() ? kEmpty : it->second;
}

std::vector<std::string> Dag::roots() const {
  std::vector<std::string> out;
  for (const DagNode& n : nodes_) {
    if (parents(n.id).empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<std::string> Dag::leaves() const {
  std::vector<std::string> out;
  for (const DagNode& n : nodes_) {
    if (children(n.id).empty()) out.push_back(n.id);
  }
  return out;
}

Expected<std::vector<std::string>> Dag::topological_order() const {
  std::map<std::string, std::size_t> in_degree;
  for (const DagNode& n : nodes_) in_degree[n.id] = parents(n.id).size();
  std::deque<std::string> ready;
  for (const DagNode& n : nodes_) {
    if (in_degree[n.id] == 0) ready.push_back(n.id);
  }
  std::vector<std::string> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::string id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const std::string& child : children(id)) {
      if (--in_degree[child] == 0) ready.push_back(child);
    }
  }
  if (order.size() != nodes_.size()) {
    return Error(ErrorCode::kInvalidArgument, "workflow graph contains a cycle");
  }
  return order;
}

namespace {
void erase_value(std::vector<std::string>& v, const std::string& value) {
  v.erase(std::remove(v.begin(), v.end(), value), v.end());
}
}  // namespace

Status Dag::remove_node_splice(const std::string& id) {
  if (!index_.count(id)) return Error(ErrorCode::kNotFound, "node " + id);
  const std::vector<std::string> my_parents = parents_[id];
  const std::vector<std::string> my_children = children_[id];
  const Status s = remove_node(id);
  if (!s.ok()) return s;
  for (const std::string& p : my_parents) {
    for (const std::string& c : my_children) {
      (void)add_edge(p, c);
    }
  }
  return Status::Ok();
}

Status Dag::remove_node(const std::string& id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return Error(ErrorCode::kNotFound, "node " + id);
  for (const std::string& p : parents_[id]) erase_value(children_[p], id);
  for (const std::string& c : children_[id]) erase_value(parents_[c], id);
  parents_.erase(id);
  children_.erase(id);
  const std::size_t pos = it->second;
  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& [node_id, node_pos] : index_) {
    if (node_pos > pos) --node_pos;
  }
  return Status::Ok();
}

std::string Dag::to_string() const {
  std::string out;
  for (const DagNode& n : nodes_) {
    out += format("%s [%s", n.id.c_str(), nvo::vds::to_string(n.type));
    if (!n.transformation.empty()) out += " " + n.transformation;
    if (!n.site.empty()) out += " @" + n.site;
    out += "]";
    if (!n.inputs.empty()) out += " in:" + join(n.inputs, ",");
    if (!n.outputs.empty()) out += " out:" + join(n.outputs, ",");
    const auto& kids = children(n.id);
    if (!kids.empty()) out += " -> " + join(kids, ",");
    out += "\n";
  }
  return out;
}

}  // namespace nvo::vds
