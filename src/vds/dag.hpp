// Workflow DAG shared between Chimera (abstract workflows over logical files
// and logical transformations) and Pegasus (concrete workflows with sites,
// transfer nodes, and registration nodes). "The workflows are represented as
// Directed Acyclic Graphs" (§3.2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/expected.hpp"

namespace nvo::vds {

/// Node flavor. Abstract workflows contain only kCompute nodes; Pegasus
/// inserts kTransfer (stage-in/stage-out) and kRegister (publish to RLS)
/// nodes during concretization (paper Fig. 4).
enum class JobType { kCompute, kTransfer, kRegister };

const char* to_string(JobType t);

struct DagNode {
  std::string id;              ///< unique within the DAG (derivation name)
  JobType type = JobType::kCompute;
  std::string transformation;  ///< logical transformation name (kCompute)
  std::vector<std::string> inputs;   ///< logical file names consumed
  std::vector<std::string> outputs;  ///< logical file names produced
  std::map<std::string, std::string> args;  ///< actual scalar parameters

  // --- concrete-workflow fields (set by Pegasus) ---
  std::string site;        ///< execution site (kCompute) or destination (kTransfer)
  std::string source_site; ///< transfer origin (kTransfer)
  std::string file;        ///< subject logical file (kTransfer / kRegister)
  std::string executable;  ///< physical executable path (kCompute)
};

/// Adjacency-list DAG with stable node ordering (insertion order), cycle
/// detection, and the traversals the planner and executor need.
class Dag {
 public:
  /// Adds a node; ids must be unique.
  Status add_node(DagNode node);

  /// Adds a dependency edge parent -> child; both must exist. Duplicate
  /// edges are ignored.
  Status add_edge(const std::string& parent, const std::string& child);

  bool has_node(const std::string& id) const;
  const DagNode* node(const std::string& id) const;
  DagNode* mutable_node(const std::string& id);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const;
  bool empty() const { return nodes_.empty(); }

  /// Node ids in insertion order.
  std::vector<std::string> node_ids() const;

  const std::vector<std::string>& parents(const std::string& id) const;
  const std::vector<std::string>& children(const std::string& id) const;

  /// Nodes with no parents / no children.
  std::vector<std::string> roots() const;
  std::vector<std::string> leaves() const;

  /// Kahn topological order; error when a cycle exists.
  Expected<std::vector<std::string>> topological_order() const;

  /// Removes a node, splicing edges: every parent of the removed node
  /// becomes a parent of each of its children (used by DAG reduction so
  /// pruning an interior job preserves ordering constraints).
  Status remove_node_splice(const std::string& id);

  /// Removes a node and its incident edges without splicing.
  Status remove_node(const std::string& id);

  /// Multi-line human-readable rendering for logs and examples.
  std::string to_string() const;

 private:
  std::vector<DagNode> nodes_;                       // insertion order
  std::map<std::string, std::size_t> index_;         // id -> position
  std::map<std::string, std::vector<std::string>> parents_;
  std::map<std::string, std::vector<std::string>> children_;
  static const std::vector<std::string> kEmpty;
};

}  // namespace nvo::vds
