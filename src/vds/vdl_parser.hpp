// Recursive-descent parser for the VDL concrete syntax (see vdl.hpp). A VDL
// document is a sequence of TR and DV statements; this is the format the
// portal's XSLT-equivalent transform emits ("a second stylesheet converted
// the catalog directly into a derivation file containing the Virtual Data
// Language markup", §4.3) and the format Chimera ingests.
#pragma once

#include <string>
#include <vector>

#include "common/expected.hpp"
#include "vds/vdl.hpp"

namespace nvo::vds {

struct VdlDocument {
  std::vector<Transformation> transformations;
  std::vector<Derivation> derivations;
};

/// Parses a full VDL document. Comments run from '#' or '//' to newline.
Expected<VdlDocument> parse_vdl(const std::string& text);

}  // namespace nvo::vds
