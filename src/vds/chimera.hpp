// Chimera: the Virtual Data Catalog plus the abstract-workflow composer.
// "When a user or application requests a particular logical file name,
// Chimera composes an abstract workflow based on the previously defined
// derivations (if that composition is possible)" (§3.2). The abstract
// workflow names only logical files and logical transformations; resource
// binding is Pegasus's job.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "vds/dag.hpp"
#include "vds/vdl.hpp"
#include "vds/vdl_parser.hpp"

namespace nvo::vds {

/// The Virtual Data Catalog: registered transformations and derivations,
/// indexed by the logical files the derivations produce.
class VirtualDataCatalog {
 public:
  /// Registers a transformation template; names are unique.
  Status define_transformation(Transformation tr);

  /// Registers a derivation. Validation: the referenced transformation must
  /// exist, every binding must name one of its formal arguments, every
  /// formal argument must be bound, file-binding directions must match the
  /// formal declaration, and no other derivation may already produce any of
  /// its output files (single-producer rule).
  Status define_derivation(Derivation dv);

  /// Ingests a whole parsed VDL document.
  Status ingest(const VdlDocument& doc);

  const Transformation* transformation(const std::string& name) const;
  const Derivation* derivation(const std::string& name) const;

  /// The derivation producing a logical file, or nullptr if the file is raw
  /// input (exists only in storage, not derivable).
  const Derivation* producer(const std::string& logical_file) const;

  std::size_t num_transformations() const { return transformations_.size(); }
  std::size_t num_derivations() const { return derivations_.size(); }

 private:
  std::map<std::string, Transformation> transformations_;
  std::map<std::string, Derivation> derivations_;
  std::map<std::string, std::string> producer_of_;  // lfn -> derivation name
};

/// Composes the abstract workflow that materializes the requested logical
/// files: the transitive closure of producing derivations, with an edge
/// d1 -> d2 whenever an output of d1 is an input of d2 (paper Fig. 1).
/// Files with no producer are treated as raw inputs — they become
/// requirements on the workflow's root nodes, checked later by Pegasus's
/// feasibility pass. Requesting a file that has no producer is an error.
Expected<Dag> compose_abstract_workflow(const VirtualDataCatalog& catalog,
                                        const std::vector<std::string>& requests);

/// All raw-input logical files of an abstract workflow: inputs consumed by
/// some node but produced by none.
std::vector<std::string> raw_inputs(const Dag& dag);

}  // namespace nvo::vds
