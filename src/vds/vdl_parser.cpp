#include "vds/vdl_parser.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace nvo::vds {

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& text) : s_(text) {}

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
      if (pos_ < s_.size() && s_[pos_] == '#') {
        skip_line();
        continue;
      }
      if (pos_ + 1 < s_.size() && s_[pos_] == '/' && s_[pos_ + 1] == '/') {
        skip_line();
        continue;
      }
      return;
    }
  }

  bool eof() {
    skip_ws_and_comments();
    return pos_ >= s_.size();
  }

  bool consume(std::string_view token) {
    skip_ws_and_comments();
    if (s_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  /// Like consume, but only matches when the token is not followed by an
  /// identifier character — so the keyword "in" cannot eat the prefix of an
  /// argument named "input".
  bool consume_keyword(std::string_view token) {
    skip_ws_and_comments();
    if (s_.compare(pos_, token.size(), token) != 0) return false;
    const std::size_t after = pos_ + token.size();
    if (after < s_.size()) {
      const char c = s_[after];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') return false;
    }
    pos_ += token.size();
    return true;
  }

  /// Identifier: [A-Za-z_][A-Za-z0-9_.]*. The '-' is excluded so the DV
  /// arrow "d1->galMorph" lexes as identifier, '->', identifier; hyphenated
  /// logical file names are quoted strings, not identifiers.
  Expected<std::string> identifier() {
    skip_ws_and_comments();
    const std::size_t start = pos_;
    if (pos_ < s_.size() &&
        (std::isalpha(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_')) {
      ++pos_;
      while (pos_ < s_.size()) {
        const char c = s_[pos_];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
          ++pos_;
        } else {
          break;
        }
      }
    }
    if (pos_ == start) {
      return Error(ErrorCode::kParseError, here("expected identifier"));
    }
    return s_.substr(start, pos_ - start);
  }

  /// Double-quoted string with backslash escapes.
  Expected<std::string> quoted_string() {
    skip_ws_and_comments();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return Error(ErrorCode::kParseError, here("expected '\"'"));
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) {
      return Error(ErrorCode::kParseError, "unterminated string literal");
    }
    ++pos_;  // closing quote
    return out;
  }

  /// Skips a balanced { ... } block (TR bodies are opaque to us, as they
  /// were elided "{ ... }" in the paper).
  Status skip_braced_block() {
    skip_ws_and_comments();
    if (pos_ >= s_.size() || s_[pos_] != '{') {
      return Error(ErrorCode::kParseError, here("expected '{'"));
    }
    int depth = 0;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '{') ++depth;
      if (c == '}' && --depth == 0) return Status::Ok();
    }
    return Error(ErrorCode::kParseError, "unterminated '{' block");
  }

  std::string here(const std::string& what) const {
    return format("%s at offset %zu", what.c_str(), pos_);
  }

 private:
  void skip_line() {
    while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Expected<Transformation> parse_tr(Lexer& lex) {
  Transformation tr;
  auto name = lex.identifier();
  if (!name.ok()) return name.error();
  tr.name = std::move(name.value());
  if (!lex.consume("(")) return Error(ErrorCode::kParseError, "expected '(' after TR name");
  if (!lex.consume(")")) {
    for (;;) {
      Direction dir;
      if (lex.consume_keyword("in")) {
        dir = Direction::kIn;
      } else if (lex.consume_keyword("out")) {
        dir = Direction::kOut;
      } else {
        return Error(ErrorCode::kParseError, lex.here("expected 'in' or 'out'"));
      }
      auto arg = lex.identifier();
      if (!arg.ok()) return arg.error();
      tr.args.push_back(FormalArg{std::move(arg.value()), dir});
      if (lex.consume(")")) break;
      if (!lex.consume(",")) {
        return Error(ErrorCode::kParseError, lex.here("expected ',' or ')'"));
      }
    }
  }
  const Status body = lex.skip_braced_block();
  if (!body.ok()) return body.error();
  return tr;
}

Expected<Derivation> parse_dv(Lexer& lex) {
  Derivation dv;
  auto name = lex.identifier();
  if (!name.ok()) return name.error();
  dv.name = std::move(name.value());
  if (!lex.consume("->")) {
    return Error(ErrorCode::kParseError, lex.here("expected '->' after DV name"));
  }
  auto tr_name = lex.identifier();
  if (!tr_name.ok()) return tr_name.error();
  dv.transformation = std::move(tr_name.value());
  if (!lex.consume("(")) return Error(ErrorCode::kParseError, "expected '(' in DV");
  if (!lex.consume(")")) {
    for (;;) {
      auto formal = lex.identifier();
      if (!formal.ok()) return formal.error();
      if (!lex.consume("=")) {
        return Error(ErrorCode::kParseError, lex.here("expected '=' in DV binding"));
      }
      ActualArg actual;
      if (lex.consume("@{")) {
        actual.is_file = true;
        if (lex.consume_keyword("in")) {
          actual.direction = Direction::kIn;
        } else if (lex.consume_keyword("out")) {
          actual.direction = Direction::kOut;
        } else {
          return Error(ErrorCode::kParseError, lex.here("expected in/out in @{...}"));
        }
        if (!lex.consume(":")) {
          return Error(ErrorCode::kParseError, lex.here("expected ':' in @{...}"));
        }
        auto lfn = lex.quoted_string();
        if (!lfn.ok()) return lfn.error();
        actual.value = std::move(lfn.value());
        if (!lex.consume("}")) {
          return Error(ErrorCode::kParseError, lex.here("expected '}' closing @{...}"));
        }
      } else {
        auto literal = lex.quoted_string();
        if (!literal.ok()) return literal.error();
        actual.value = std::move(literal.value());
      }
      if (dv.bindings.count(formal.value())) {
        return Error(ErrorCode::kParseError,
                     "duplicate binding '" + formal.value() + "' in DV " + dv.name);
      }
      dv.bindings[formal.value()] = std::move(actual);
      if (lex.consume(")")) break;
      if (!lex.consume(",")) {
        return Error(ErrorCode::kParseError, lex.here("expected ',' or ')'"));
      }
    }
  }
  if (!lex.consume(";")) {
    return Error(ErrorCode::kParseError, lex.here("expected ';' after DV"));
  }
  return dv;
}

}  // namespace

Expected<VdlDocument> parse_vdl(const std::string& text) {
  VdlDocument doc;
  Lexer lex(text);
  while (!lex.eof()) {
    if (lex.consume_keyword("TR")) {
      auto tr = parse_tr(lex);
      if (!tr.ok()) return tr.error();
      doc.transformations.push_back(std::move(tr.value()));
    } else if (lex.consume_keyword("DV")) {
      auto dv = parse_dv(lex);
      if (!dv.ok()) return dv.error();
      doc.derivations.push_back(std::move(dv.value()));
    } else {
      return Error(ErrorCode::kParseError, lex.here("expected 'TR' or 'DV'"));
    }
  }
  return doc;
}

}  // namespace nvo::vds
