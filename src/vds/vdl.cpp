#include "vds/vdl.hpp"

#include "common/strings.hpp"

namespace nvo::vds {

const FormalArg* Transformation::find_arg(const std::string& arg_name) const {
  for (const FormalArg& a : args) {
    if (a.name == arg_name) return &a;
  }
  return nullptr;
}

std::vector<std::string> Derivation::input_files() const {
  std::vector<std::string> out;
  for (const auto& [name, actual] : bindings) {
    if (actual.is_file && actual.direction == Direction::kIn) {
      out.push_back(actual.value);
    }
  }
  return out;
}

std::vector<std::string> Derivation::output_files() const {
  std::vector<std::string> out;
  for (const auto& [name, actual] : bindings) {
    if (actual.is_file && actual.direction == Direction::kOut) {
      out.push_back(actual.value);
    }
  }
  return out;
}

std::map<std::string, std::string> Derivation::scalar_args() const {
  std::map<std::string, std::string> out;
  for (const auto& [name, actual] : bindings) {
    if (!actual.is_file) out[name] = actual.value;
  }
  return out;
}

std::string to_vdl(const Transformation& tr) {
  std::vector<std::string> parts;
  for (const FormalArg& a : tr.args) {
    parts.push_back(std::string(a.direction == Direction::kIn ? "in " : "out ") +
                    a.name);
  }
  return "TR " + tr.name + "( " + join(parts, ", ") + " ) { }";
}

std::string to_vdl(const Derivation& dv) {
  std::vector<std::string> parts;
  for (const auto& [name, actual] : dv.bindings) {
    if (actual.is_file) {
      parts.push_back(format("%s=@{%s:\"%s\"}", name.c_str(),
                             actual.direction == Direction::kIn ? "in" : "out",
                             actual.value.c_str()));
    } else {
      parts.push_back(format("%s=\"%s\"", name.c_str(), actual.value.c_str()));
    }
  }
  return "DV " + dv.name + "->" + dv.transformation + "( " + join(parts, ", ") + " );";
}

}  // namespace nvo::vds
