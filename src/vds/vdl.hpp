// The Chimera Virtual Data Language (VDL), per paper §3.2: transformations
// ("general descriptions of the transformation ... applied to data") and
// derivations ("instantiations of these transformations on specific
// datasets"). The concrete syntax follows the paper's example:
//
//   TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om,
//                in flat, in image, out galMorph ) { ... }
//
//   DV d1->galMorph( redshift="0.027886",
//                    image=@{in:"NGP9_F323-0927589.fit"},
//                    pixScale="2.831933107035062E-4", zeroPoint="0",
//                    Ho="100", om="0.3", flat="1",
//                    galMorph=@{out:"NGP9_F323-0927589.txt"} );
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"

namespace nvo::vds {

/// Formal-argument direction. Scalars are declared `in` in the paper's
/// example; files are distinguished at the derivation level by the @{...}
/// binding, so the TR only records direction.
enum class Direction { kIn, kOut };

struct FormalArg {
  std::string name;
  Direction direction = Direction::kIn;
};

/// A transformation template: logical name + formal arguments.
struct Transformation {
  std::string name;
  std::vector<FormalArg> args;

  const FormalArg* find_arg(const std::string& arg_name) const;
};

/// An actual argument in a derivation: either a scalar literal or a logical
/// file with a direction marker (@{in:"lfn"} / @{out:"lfn"}).
struct ActualArg {
  bool is_file = false;
  std::string value;  ///< scalar literal, or logical file name
  Direction direction = Direction::kIn;  ///< meaningful when is_file
};

/// A derivation: named instantiation of a transformation.
struct Derivation {
  std::string name;            ///< e.g. "d1"
  std::string transformation;  ///< TR it instantiates
  std::map<std::string, ActualArg> bindings;  ///< formal name -> actual

  /// Logical files consumed / produced (in binding order by formal name).
  std::vector<std::string> input_files() const;
  std::vector<std::string> output_files() const;
  /// Scalar parameters only.
  std::map<std::string, std::string> scalar_args() const;
};

/// Pretty-printers producing the concrete VDL syntax above (used by the
/// portal transform that writes derivation files, and in round-trip tests).
std::string to_vdl(const Transformation& tr);
std::string to_vdl(const Derivation& dv);

}  // namespace nvo::vds
