// Quickstart: measure the morphology of one galaxy, end to end, with no
// grid machinery — the core library in ~60 lines.
//
//   $ ./quickstart
//
// Synthesizes an elliptical and a spiral at redshift 0.15, runs the
// galMorph transformation on each (the same kernel the workflow jobs run),
// and prints the three paper parameters: average surface brightness,
// concentration index, asymmetry index.
#include <cstdio>

#include "core/galmorph.hpp"
#include "image/fits.hpp"
#include "sim/galaxy.hpp"

using namespace nvo;

namespace {

sim::GalaxyTruth make_galaxy(sim::MorphType type) {
  sim::GalaxyTruth g;
  g.id = std::string("DEMO_") + sim::to_string(type);
  g.seed = hash64(g.id);
  g.type = type;
  g.redshift = 0.15;
  g.total_flux = 9e4;
  g.r_e_pix = 4.5;
  if (type == sim::MorphType::kSpiral) {
    g.sersic_n = 1.0;        // exponential disk
    g.arm_amplitude = 0.55;  // grand-design arms
    g.clumpiness = 0.12;     // star-forming clumps
    g.r_e_pix = 6.5;
  }
  return g;
}

void analyze(const sim::GalaxyTruth& g) {
  // Render a 64x64 survey cutout (1"/pixel, sky + Poisson + read noise).
  image::FitsFile cutout;
  cutout.data = sim::render_galaxy(g, 64, sim::RenderOptions{});
  cutout.header.set_string("OBJECT", g.id, "synthetic galaxy");

  // The paper's transformation arguments: TR galMorph(in redshift, in
  // pixScale, in zeroPoint, in Ho, in om, in flat, in image, out galMorph).
  core::GalMorphArgs args;
  args.redshift = g.redshift;
  args.pix_scale_deg = 1.0 / 3600.0;  // 1 arcsec/pixel
  args.zero_point = 25.0;

  const core::GalMorphResult result = core::run_gal_morph(g.id, cutout, args);

  std::printf("%s (truth: %s)\n", g.id.c_str(), sim::to_string(g.type));
  if (!result.params.valid) {
    std::printf("  INVALID: %s\n", result.params.failure_reason.c_str());
    return;
  }
  std::printf("  average surface brightness : %6.2f mag/arcsec^2\n",
              result.params.surface_brightness);
  std::printf("  concentration index        : %6.2f\n",
              result.params.concentration);
  std::printf("  asymmetry index            : %6.3f\n", result.params.asymmetry);
  std::printf("  petrosian radius           : %6.2f pix = %.1f kpc (H0=%.0f)\n",
              result.params.petrosian_r, result.petrosian_r_kpc, args.h0);
  std::printf("  S/N                        : %6.1f\n\n", result.params.snr);
}

}  // namespace

int main() {
  std::printf("galMorph quickstart — the two morphology archetypes:\n\n");
  analyze(make_galaxy(sim::MorphType::kElliptical));
  analyze(make_galaxy(sim::MorphType::kSpiral));
  std::printf("expected ordering (Conselice 2003): the elliptical is more\n"
              "concentrated (higher C) and more symmetric (lower A).\n");
  return 0;
}
