// Workflow demo: the Virtual Data System end to end, following paper
// Figures 1-4 with the paper's own VDL example.
//
//   $ ./workflow_demo
//
//   1. Define TR galMorph and derivations in VDL text; parse + ingest.
//   2. Request a logical file -> Chimera composes the abstract workflow.
//   3. Pegasus: RLS lookup, reduction, feasibility, site mapping, transfer
//      and registration nodes, Condor submit files.
//   4. DAGMan executes the concrete workflow on the simulated 3-pool grid.
//   5. A second identical request is satisfied by reduction alone — the
//      virtual-data reuse the system is named for.
#include <cstdio>

#include "grid/dagman.hpp"
#include "pegasus/planner.hpp"
#include "pegasus/request_manager.hpp"
#include "vds/chimera.hpp"
#include "vds/vdl_parser.hpp"

using namespace nvo;

int main() {
  // ---- 1. the VDL document (paper §3.2 syntax) ----
  const std::string vdl = R"(
# galaxy morphology virtual data definitions
TR galMorph( in redshift, in pixScale, in zeroPoint, in Ho, in om, in flat,
             in image, out galMorph ) { }
TR concat2( in r1, in r2, out votable ) { }

DV d1->galMorph( redshift="0.027886", image=@{in:"NGP9_F323-0927589.fit"},
                 pixScale="2.831933107035062E-4", zeroPoint="0", Ho="100",
                 om="0.3", flat="1",
                 galMorph=@{out:"NGP9_F323-0927589.txt"} );
DV d2->galMorph( redshift="0.027886", image=@{in:"NGP9_F324-0927590.fit"},
                 pixScale="2.831933107035062E-4", zeroPoint="0", Ho="100",
                 om="0.3", flat="1",
                 galMorph=@{out:"NGP9_F324-0927590.txt"} );
DV dc->concat2( r1=@{in:"NGP9_F323-0927589.txt"},
                r2=@{in:"NGP9_F324-0927590.txt"},
                votable=@{out:"NGP9_morph.vot"} );
)";
  std::printf("--- VDL document ---%s\n", vdl.c_str());

  auto doc = vds::parse_vdl(vdl);
  if (!doc.ok()) {
    std::printf("VDL parse error: %s\n", doc.error().to_string().c_str());
    return 1;
  }
  vds::VirtualDataCatalog vdc;
  if (Status s = vdc.ingest(doc.value()); !s.ok()) {
    std::printf("catalog error: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::printf("catalog: %zu transformations, %zu derivations\n\n",
              vdc.num_transformations(), vdc.num_derivations());

  // ---- grid environment: the three Condor pools + data placement ----
  grid::Grid grid = grid::make_paper_grid();
  pegasus::ReplicaLocationService rls;
  pegasus::TransformationCatalog tc;
  for (const std::string& site : grid.site_names()) {
    (void)tc.add({"galMorph", site, "/grid/bin/galMorph", {}});
  }
  (void)tc.add({"concat2", "isi", "/grid/bin/concat", {}});
  for (const char* img : {"NGP9_F323-0927589.fit", "NGP9_F324-0927590.fit"}) {
    rls.add(img, "isi", std::string("gsiftp://isi/") + img);
    grid.put_file("isi", img, 22160);
  }

  // ---- 2-4. request the final product through the request manager ----
  pegasus::RequestManager manager(vdc, grid, rls, tc, pegasus::PlannerConfig{},
                                  grid::JobCostModel{}, grid::FailureModel{});
  auto trace = manager.handle({"NGP9_morph.vot"});
  if (!trace.ok()) {
    std::printf("request failed: %s\n", trace.error().to_string().c_str());
    return 1;
  }
  std::printf("--- abstract workflow (Chimera, Fig. 1) ---\n%s\n",
              trace->abstract.to_string().c_str());
  std::printf("--- concrete workflow (Pegasus, Fig. 4) ---\n%s\n",
              trace->plan.concrete.to_string().c_str());
  std::printf("--- DAGMan input file ---\n%s\n", trace->submits.dag_file.c_str());
  std::printf("--- one Condor submit file ---\n%s\n",
              trace->submits.submit.begin()->second.c_str());
  std::printf("execution: %zu jobs in %.1f simulated seconds; %zu replicas "
              "registered\n\n",
              trace->execution.jobs_total, trace->execution.makespan_seconds,
              trace->registrations);

  // ---- 5. ask again: virtual data pays off ----
  auto again = manager.handle({"NGP9_morph.vot"});
  std::printf("second request: %zu of %zu jobs pruned by reduction, %zu jobs "
              "executed (%s)\n",
              again->plan.pruned_jobs, again->plan.abstract_jobs,
              again->execution.jobs_total,
              again->satisfied ? "satisfied from existing replicas" : "FAILED");
  return 0;
}
