// Cluster campaign: the paper's §5 experiment — eight clusters analyzed
// through the full stack, with the accounting the paper reports and the
// per-cluster Dressler analysis.
//
//   $ ./cluster_campaign [population_scale]
//
// population_scale 1.0 (default 0.3 here for a quick run) reproduces the
// paper's 37..561 members per cluster / 1525 galaxies total.
#include <cstdio>
#include <cstdlib>

#include "analysis/campaign.hpp"

using namespace nvo;

int main(int argc, char** argv) {
  analysis::CampaignConfig config;
  config.population_scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  config.compute_threads = 2;

  std::printf("=== eight-cluster campaign, population scale %.2f ===\n\n",
              config.population_scale);
  analysis::Campaign campaign(config);
  auto report = campaign.run();
  if (!report.ok()) {
    std::printf("campaign failed: %s\n", report.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", report->to_text().c_str());

  std::printf("science summary per cluster:\n");
  for (const analysis::ClusterOutcome& c : report->clusters) {
    std::printf("  %-8s early core/edge %.2f/%.2f  rho(A,Sigma)=%+.2f  "
                "rho(C,Sigma)=%+.2f  %s\n",
                c.name.c_str(), c.dressler.early_fraction_core,
                c.dressler.early_fraction_edge,
                c.dressler.spearman_asymmetry_density,
                c.dressler.spearman_concentration_density,
                c.dressler.relation_detected() ? "relation: YES" : "relation: -");
  }
  std::printf("\nDressler (1980) by hand vs this pipeline on the grid: \"we "
              "have 'rediscovered' the\ndensity-morphology relation ... "
              "pointing out the value of the Grid for applying new\nanalysis "
              "techniques on existing data\" (paper, Section 5)\n");
  return 0;
}
