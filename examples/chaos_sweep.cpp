// Chaos sweep: the eight-cluster campaign re-run under increasing transient
// failure rates on every federated archive, plus a final run with a full
// CADC outage on top. Prints one table row per fault level: how much the
// retry layer worked (retries, breaker trips, mirror failovers), what it
// cost (simulated-time inflation vs fault-free), and whether the science
// survived (galaxies measured, clusters showing the relation).
//
// A second section (CR) sweeps the corruption faults — bit flips, truncated
// reads, stale-replica replays on the cutout archive — and a kill/resume
// scenario on a durable checkpoint journal. The process exits non-zero if
// any injected corruption goes undetected or any catalog differs byte-wise
// from the fault-free run.
//
//   $ ./chaos_sweep [population_scale]
//
// Deterministic: same build, same scale -> same tables.
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "analysis/campaign.hpp"
#include "obs/metrics.hpp"
#include "services/chaos.hpp"
#include "services/federation.hpp"

using namespace nvo;

namespace {

analysis::CampaignConfig make_config(double scale) {
  analysis::CampaignConfig config;
  config.population_scale = scale;
  config.compute_threads = 2;
  return config;
}

services::ChaosSchedule all_archives_flaky(double rate) {
  services::ChaosSchedule chaos;
  for (const std::string& host : services::Federation::archive_hosts()) {
    chaos.flaky(host, rate);
  }
  return chaos;
}

struct SweepRow {
  std::string label;
  analysis::CampaignReport report;
};

bool catalogs_identical(const analysis::CampaignReport& a,
                        const analysis::CampaignReport& b) {
  if (a.clusters.size() != b.clusters.size()) return false;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    if (a.clusters[i].catalog_xml != b.clusters[i].catalog_xml) return false;
  }
  return true;
}

services::ChaosSchedule corruption(const std::string& kind, double rate) {
  services::ChaosSchedule chaos;
  const std::string host = services::Federation::kMastHost;
  if (kind == "bit_flip") chaos.bit_flip(host, rate);
  else if (kind == "truncate") chaos.truncate(host, rate);
  else chaos.stale_replica(host, rate);
  return chaos;
}

// CR section: corruption sweep + kill/resume. Returns the number of
// integrity violations (undetected corruptions or catalog mismatches).
int run_integrity_sweep(double scale, const analysis::CampaignReport& baseline) {
  int violations = 0;
  std::printf("\n=== CR — corruption + checkpoint/resume ===\n\n");
  std::printf("%-24s %9s %9s %11s %10s %10s\n", "scenario", "injected",
              "caught", "undetected", "reroutes", "catalog");

  for (const std::string kind : {"bit_flip", "truncate", "stale_replica"}) {
    for (double rate : {0.25, 1.0}) {
      analysis::CampaignConfig config = make_config(scale);
      config.chaos = corruption(kind, rate);
      analysis::Campaign campaign(config);
      obs::MetricsRegistry registry;
      campaign.register_metrics(registry);
      auto report = campaign.run();
      char label[48];
      std::snprintf(label, sizeof label, "%s %.0f%%", kind.c_str(),
                    rate * 100.0);
      if (!report.ok()) {
        std::printf("%-24s campaign FAILED: %s\n", label,
                    report.error().to_string().c_str());
        ++violations;
        continue;
      }
      const obs::MetricsSnapshot snap = registry.snapshot();
      const double injected = snap.counter("fabric.corruptions_injected");
      const double caught = snap.counter("client.portal.integrity_failures") +
                            snap.counter("client.compute.integrity_failures");
      const double undetected = injected - caught;
      const bool identical = catalogs_identical(*report, baseline);
      std::printf("%-24s %9.0f %9.0f %11.0f %10llu %10s\n", label, injected,
                  caught, undetected,
                  static_cast<unsigned long long>(report->total_quarantine_skips),
                  identical ? "identical" : "DIFFERS");
      if (undetected > 0.0 || !identical) ++violations;
    }
  }

  // Kill/resume: journaled campaign killed mid-run, restarted on the same
  // journal, must converge to the fault-free catalogs re-executing only the
  // unfinished DAG nodes.
  const char* tmp = std::getenv("TMPDIR");
  const std::string journal =
      std::string(tmp ? tmp : "/tmp") + "/nvo_chaos_sweep.journal";
  std::remove(journal.c_str());
  {
    analysis::CampaignConfig config = make_config(scale);
    config.journal_path = journal;
    config.chaos.kill_after_nodes(50);
    auto killed = analysis::Campaign(config).run();
    std::printf("\nkill after 50 node completions: %s\n",
                killed.ok() ? "campaign unexpectedly survived"
                            : killed.error().to_string().c_str());
    if (killed.ok()) ++violations;
  }
  analysis::CampaignConfig config = make_config(scale);
  config.journal_path = journal;
  auto resumed = analysis::Campaign(config).run();
  if (!resumed.ok()) {
    std::printf("resume FAILED: %s\n", resumed.error().to_string().c_str());
    std::remove(journal.c_str());
    return violations + 1;
  }
  const bool identical = catalogs_identical(*resumed, baseline);
  std::printf("resume: %zu clusters whole from journal, %zu rows + %zu DAG "
              "nodes recovered, catalogs %s\n",
              resumed->clusters_resumed, resumed->total_rows_resumed,
              resumed->total_nodes_resumed,
              identical ? "byte-identical to fault-free" : "DIFFER");
  if (!identical) ++violations;
  if (resumed->clusters_resumed + resumed->total_nodes_resumed == 0) {
    std::printf("resume recovered nothing from the journal\n");
    ++violations;
  }
  std::remove(journal.c_str());
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;
  std::printf("=== chaos sweep, population scale %.2f ===\n\n", scale);

  std::vector<SweepRow> rows;
  auto run = [&](const std::string& label, services::ChaosSchedule chaos,
                 bool cadc_outage) -> bool {
    analysis::CampaignConfig config = make_config(scale);
    if (cadc_outage) {
      chaos.outage(services::Federation::kCadcHost, 0.0,
                   std::numeric_limits<double>::infinity());
    }
    config.chaos = std::move(chaos);
    auto report = analysis::Campaign(config).run();
    if (!report.ok()) {
      std::printf("%s: campaign FAILED: %s\n", label.c_str(),
                  report.error().to_string().c_str());
      return false;
    }
    rows.push_back({label, std::move(report.value())});
    return true;
  };

  if (!run("fault-free", {}, false)) return 1;
  for (double rate : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    char label[32];
    std::snprintf(label, sizeof label, "flaky %.0f%%", rate * 100.0);
    if (!run(label, all_archives_flaky(rate), false)) return 1;
  }
  if (!run("flaky 20% + CADC out", all_archives_flaky(0.20), true)) return 1;

  const double base_sim = rows.front().report.total_sim_seconds;
  std::printf(
      "%-22s %9s %7s %9s %8s %10s %11s %9s %9s\n", "scenario", "galaxies",
      "valid", "retries", "breaker", "failovers", "degraded", "sim-time",
      "relation");
  for (const SweepRow& row : rows) {
    const analysis::CampaignReport& r = row.report;
    std::size_t valid = 0;
    for (const analysis::ClusterOutcome& c : r.clusters) valid += c.valid;
    std::printf("%-22s %9zu %7zu %9llu %8llu %10llu %11zu %8.2fx %6zu/%zu\n",
                row.label.c_str(), r.total_galaxies, valid,
                static_cast<unsigned long long>(r.total_retries),
                static_cast<unsigned long long>(r.total_breaker_trips),
                static_cast<unsigned long long>(r.total_failovers),
                r.archives_degraded, r.total_sim_seconds / base_sim,
                r.clusters_with_relation, r.clusters.size());
  }

  std::printf("\ndegradations in the final scenario:\n");
  const analysis::CampaignReport& last = rows.back().report;
  if (last.degradations.empty()) std::printf("  (none)\n");
  for (const auto& d : last.degradations) {
    std::printf("  %s/%s: %s\n", d.cluster.c_str(), d.status.archive.c_str(),
                d.status.skipped_reason.c_str());
  }

  const int violations = run_integrity_sweep(scale, rows.front().report);
  if (violations > 0) {
    std::printf("\nFAIL: %d integrity violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall corruption caught, all catalogs byte-identical\n");
  return 0;
}
