// Chaos sweep: the eight-cluster campaign re-run under increasing transient
// failure rates on every federated archive, plus a final run with a full
// CADC outage on top. Prints one table row per fault level: how much the
// retry layer worked (retries, breaker trips, mirror failovers), what it
// cost (simulated-time inflation vs fault-free), and whether the science
// survived (galaxies measured, clusters showing the relation).
//
//   $ ./chaos_sweep [population_scale]
//
// Deterministic: same build, same scale -> same table.
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "analysis/campaign.hpp"
#include "services/chaos.hpp"
#include "services/federation.hpp"

using namespace nvo;

namespace {

analysis::CampaignConfig make_config(double scale) {
  analysis::CampaignConfig config;
  config.population_scale = scale;
  config.compute_threads = 2;
  return config;
}

services::ChaosSchedule all_archives_flaky(double rate) {
  services::ChaosSchedule chaos;
  for (const std::string& host : services::Federation::archive_hosts()) {
    chaos.flaky(host, rate);
  }
  return chaos;
}

struct SweepRow {
  std::string label;
  analysis::CampaignReport report;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;
  std::printf("=== chaos sweep, population scale %.2f ===\n\n", scale);

  std::vector<SweepRow> rows;
  auto run = [&](const std::string& label, services::ChaosSchedule chaos,
                 bool cadc_outage) -> bool {
    analysis::CampaignConfig config = make_config(scale);
    if (cadc_outage) {
      chaos.outage(services::Federation::kCadcHost, 0.0,
                   std::numeric_limits<double>::infinity());
    }
    config.chaos = std::move(chaos);
    auto report = analysis::Campaign(config).run();
    if (!report.ok()) {
      std::printf("%s: campaign FAILED: %s\n", label.c_str(),
                  report.error().to_string().c_str());
      return false;
    }
    rows.push_back({label, std::move(report.value())});
    return true;
  };

  if (!run("fault-free", {}, false)) return 1;
  for (double rate : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    char label[32];
    std::snprintf(label, sizeof label, "flaky %.0f%%", rate * 100.0);
    if (!run(label, all_archives_flaky(rate), false)) return 1;
  }
  if (!run("flaky 20% + CADC out", all_archives_flaky(0.20), true)) return 1;

  const double base_sim = rows.front().report.total_sim_seconds;
  std::printf(
      "%-22s %9s %7s %9s %8s %10s %11s %9s %9s\n", "scenario", "galaxies",
      "valid", "retries", "breaker", "failovers", "degraded", "sim-time",
      "relation");
  for (const SweepRow& row : rows) {
    const analysis::CampaignReport& r = row.report;
    std::size_t valid = 0;
    for (const analysis::ClusterOutcome& c : r.clusters) valid += c.valid;
    std::printf("%-22s %9zu %7zu %9llu %8llu %10llu %11zu %8.2fx %6zu/%zu\n",
                row.label.c_str(), r.total_galaxies, valid,
                static_cast<unsigned long long>(r.total_retries),
                static_cast<unsigned long long>(r.total_breaker_trips),
                static_cast<unsigned long long>(r.total_failovers),
                r.archives_degraded, r.total_sim_seconds / base_sim,
                r.clusters_with_relation, r.clusters.size());
  }

  std::printf("\ndegradations in the final scenario:\n");
  const analysis::CampaignReport& last = rows.back().report;
  if (last.degradations.empty()) std::printf("  (none)\n");
  for (const auto& d : last.degradations) {
    std::printf("  %s/%s: %s\n", d.cluster.c_str(), d.status.archive.c_str(),
                d.status.skipped_reason.c_str());
  }
  return 0;
}
