// Portal session: a scripted walk through the user experience of paper
// Figure 5 — what an astronomer saw when using the Galaxy Morphology
// portal.
//
//   $ ./portal_session [cluster]
//
//   * lists the selectable clusters (the portal's internal catalog),
//   * looks up the selected cluster's position and searches the three
//     image archives for large-scale optical and X-ray imagery,
//   * assembles the galaxy catalog from NED + CNOC cone searches,
//   * attaches cutout references, submits to the compute web service,
//     polls the status URL, merges the returned morphology VOTable,
//   * prints the first rows of the final catalog and writes it to disk
//     together with the Fig.-7-style visualization.
#include <cstdio>
#include <string>

#include "analysis/campaign.hpp"
#include "common/log.hpp"
#include "image/render.hpp"
#include "image/wcs.hpp"
#include "votable/votable_io.hpp"

using namespace nvo;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  analysis::CampaignConfig config;
  config.population_scale = 0.25;  // keep the session snappy
  analysis::Campaign campaign(config);
  portal::Portal& portal = campaign.portal();

  std::printf("=== NVO Galaxy Morphology Portal (simulated) ===\n\n");
  std::printf("available clusters:\n");
  for (const portal::ClusterEntry& c : portal.clusters()) {
    std::printf("  %-8s  %s  z=%.3f\n", c.name.c_str(),
                sky::to_sexagesimal(c.position).c_str(), c.redshift);
  }

  const std::string choice = argc > 1 ? argv[1] : "A2390";
  std::printf("\nselected: %s\n", choice.c_str());

  // Large-scale imagery (links returned to the user, per Fig. 5).
  portal::PortalTrace image_trace;
  auto links = portal.find_large_scale_images(choice, &image_trace);
  if (!links.ok()) {
    std::printf("error: %s\n", links.error().to_string().c_str());
    return 1;
  }
  std::printf("\nlarge-scale images (%.0f sim ms):\n", image_trace.image_search_ms);
  for (const std::string& url : links->optical) std::printf("  optical: %s\n", url.c_str());
  for (const std::string& url : links->xray) std::printf("  x-ray:   %s\n", url.c_str());

  // The analysis button.
  std::printf("\nrunning analysis (catalog -> cutouts -> grid compute -> "
              "merge)...\n");
  auto outcome = portal.run_analysis(choice);
  if (!outcome.ok()) {
    std::printf("analysis failed: %s\n", outcome.error().to_string().c_str());
    return 1;
  }
  const portal::PortalTrace& t = outcome->trace;
  std::printf("done: %zu galaxies, %zu valid, %zu invalid; %zu status polls; "
              "%.1f simulated seconds total\n\n",
              t.galaxies, t.valid, t.invalid, t.polls, t.total_ms() / 1000.0);

  // Show the head of the merged catalog.
  const votable::Table& cat = outcome->catalog;
  std::printf("%-14s %9s %9s %6s %7s %7s %7s\n", "id", "ra", "dec", "mag",
              "C", "A", "valid");
  for (std::size_t i = 0; i < std::min<std::size_t>(cat.num_rows(), 10); ++i) {
    std::printf("%-14s %9.4f %9.4f %6.2f %7.2f %7.3f %7s\n",
                cat.cell(i, "id").as_string().value_or("?").c_str(),
                cat.cell(i, "ra").as_number().value_or(0),
                cat.cell(i, "dec").as_number().value_or(0),
                cat.cell(i, "mag").as_number().value_or(0),
                cat.cell(i, "concentration").as_number().value_or(0),
                cat.cell(i, "asymmetry").as_number().value_or(0),
                cat.cell(i, "valid").as_bool().value_or(false) ? "yes" : "NO");
  }

  // Persist the products: the VOTable and the Aladin-style view.
  const std::string vot_path = choice + "_analysis.vot";
  (void)votable::write_votable_file(vot_path, cat);
  const sim::Cluster* cluster = campaign.universe().find_cluster(choice);
  const image::FitsFile optical = campaign.universe().optical_field(*cluster, 512, 2.0);
  const image::FitsFile xray = campaign.universe().xray_field(*cluster, 512, 2.0);
  image::RgbImage view = image::render_composite(optical.data, xray.data);
  const auto wcs = image::Wcs::from_header(optical.header).value();
  auto dressler = analysis::analyze_cluster(cat, cluster->center());
  if (dressler.ok()) {
    for (const analysis::AnalysisGalaxy& g : dressler->galaxies) {
      const auto px = wcs.sky_to_pixel(g.position);
      view.draw_dot(static_cast<int>(px.x), static_cast<int>(px.y), 4,
                    image::asymmetry_colormap(g.asymmetry, 0.0, 0.4));
    }
    std::printf("\n%s", analysis::report_to_text(dressler.value()).c_str());
  }
  const std::string ppm_path = choice + "_view.ppm";
  (void)view.write_ppm(ppm_path);
  std::printf("\nwrote %s and %s\n", vot_path.c_str(), ppm_path.c_str());
  return 0;
}
